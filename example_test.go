package mpsm_test

import (
	"context"
	"fmt"

	mpsm "repro"
)

// ExampleNew demonstrates the Engine API: construct a reusable engine once
// with functional options, then run joins against it. The default sink
// reproduces the paper's evaluation query, so Matches and MaxSum appear
// directly in the result.
func ExampleNew() {
	r := mpsm.GenerateUniform("R", 10_000, 1)
	s := mpsm.GenerateForeignKey("S", r, 40_000, 2)

	engine := mpsm.New(
		mpsm.WithAlgorithm(mpsm.PMPSM),
		mpsm.WithWorkers(4),
		mpsm.WithNUMATracking(),
	)
	res, err := engine.Join(context.Background(), r, s)
	if err != nil {
		panic(err)
	}
	// Every S tuple references an existing R key, so the join produces at
	// least |S| results (more when R contains duplicate keys).
	fmt.Println(res.Matches >= 40_000)
	fmt.Println(res.NUMA.SyncOps) // MPSM never synchronizes per tuple
	// Output:
	// true
	// 0
}

// ExampleEngine_Join_sinks demonstrates streaming sinks: the same engine
// runs one join into a counting sink and one into a top-k sink, overriding
// the algorithm per call.
func ExampleEngine_Join_sinks() {
	r := mpsm.GenerateUniform("R", 5_000, 3)
	s := mpsm.GenerateForeignKey("S", r, 20_000, 4)
	engine := mpsm.New(mpsm.WithWorkers(4))

	count := mpsm.NewCountSink()
	if _, err := engine.Join(context.Background(), r, s, mpsm.WithSink(count)); err != nil {
		panic(err)
	}

	top := mpsm.NewTopKSink(3)
	if _, err := engine.Join(context.Background(), r, s,
		mpsm.WithAlgorithm(mpsm.BMPSM), mpsm.WithSink(top)); err != nil {
		panic(err)
	}

	fmt.Println(count.Total() >= 20_000)
	fmt.Println(len(top.Top()))
	// Output:
	// true
	// 3
}

// ExampleEngine_JoinStream demonstrates the iterator form of the result
// stream: the join runs concurrently and pairs are consumed with
// range-over-func; breaking out of the loop cancels the join.
func ExampleEngine_JoinStream() {
	r := mpsm.GenerateUniform("R", 5_000, 5)
	s := mpsm.GenerateForeignKey("S", r, 20_000, 6)
	engine := mpsm.New(mpsm.WithWorkers(4))

	seq, errf := engine.JoinStream(context.Background(), r, s)
	n := 0
	for rt, st := range seq {
		if rt.Key != st.Key {
			panic("stream emitted a non-matching pair")
		}
		n++
		if n == 100 {
			break // cancels the underlying join
		}
	}
	if err := errf(); err != nil {
		panic(err)
	}
	fmt.Println(n)
	// Output:
	// 100
}

// ExampleEngine_Join_cancellation demonstrates context cancellation: a join
// launched with an already-expired context fails fast with the context's
// error instead of running the multi-phase algorithm.
func ExampleEngine_Join_cancellation() {
	r := mpsm.GenerateUniform("R", 10_000, 7)
	s := mpsm.GenerateForeignKey("S", r, 40_000, 8)
	engine := mpsm.New(mpsm.WithWorkers(4))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := engine.Join(ctx, r, s)
	fmt.Println(err)
	// Output:
	// context canceled
}

// ExampleJoin demonstrates the deprecated one-shot API, kept for
// compatibility: generate a dimension table R and a fact table S whose keys
// reference R, then run the range-partitioned MPSM join.
func ExampleJoin() {
	r := mpsm.GenerateUniform("R", 10_000, 1)
	s := mpsm.GenerateForeignKey("S", r, 40_000, 2)

	res, err := mpsm.Join(r, s, mpsm.Config{Algorithm: mpsm.PMPSM, Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Matches >= 40_000)
	// Output:
	// true
}

// ExampleJoin_kinds demonstrates the non-inner join kinds. The semi and anti
// join cardinalities always partition the private input.
func ExampleJoin_kinds() {
	r := mpsm.GenerateSkewedWithDomain("R", 5_000, 10_000, mpsm.SkewNone, 3)
	s := mpsm.GenerateSkewedWithDomain("S", 20_000, 10_000, mpsm.SkewNone, 4)
	engine := mpsm.New(mpsm.WithWorkers(4))

	semi, _ := engine.Join(context.Background(), r, s, mpsm.WithKind(mpsm.SemiJoin))
	anti, _ := engine.Join(context.Background(), r, s, mpsm.WithKind(mpsm.AntiJoin))
	fmt.Println(semi.Matches+anti.Matches == uint64(r.Len()))
	// Output:
	// true
}

// ExampleEngine_JoinWithDiskStats demonstrates the disk-enabled D-MPSM
// variant under a strict RAM budget: the join result is unaffected, only the
// paging behaviour changes.
func ExampleEngine_JoinWithDiskStats() {
	r := mpsm.GenerateUniform("R", 20_000, 5)
	s := mpsm.GenerateForeignKey("S", r, 80_000, 6)

	engine := mpsm.New(
		mpsm.WithWorkers(2),
		mpsm.WithDisk(mpsm.DiskConfig{PageSize: 1024, PageBudget: 8}),
	)
	res, stats, err := engine.JoinWithDiskStats(context.Background(), r, s)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Matches >= 80_000)
	fmt.Println(stats.Pool.MaxResident <= 8)
	// Output:
	// true
	// true
}
