package mpsm

import "repro/internal/sink"

// Sink receives the result stream of a join execution. A sink hands out one
// tuple consumer per worker before the join phase (so the hot path needs no
// locking) and merges the per-worker state in Close, mirroring the MPSM rule
// that workers only meet at phase barriers.
//
// The built-in sinks cover the common result shapes: NewMaxSumSink (the
// paper's evaluation aggregate and the default), NewCountSink,
// NewMaterializeSink, and NewTopKSink. Custom implementations can be passed
// through WithSink just the same.
//
// A sink may be reused across sequential joins — Open resets its state — but
// never across concurrent ones.
type Sink = sink.Sink

// Pair is one joined (r, s) tuple pair emitted by a join.
type Pair = sink.Pair

// MaxSumSink computes the paper's evaluation query
// max(R.payload + S.payload) together with the join cardinality. It is the
// sink every join runs with unless WithSink overrides it.
type MaxSumSink = sink.MaxSum

// NewMaxSumSink returns an empty max-sum aggregate sink.
func NewMaxSumSink() *MaxSumSink { return sink.NewMaxSum() }

// CountSink counts joined pairs without retaining them.
type CountSink = sink.Count

// NewCountSink returns a counting sink.
func NewCountSink() *CountSink { return sink.NewCount() }

// MaterializeSink collects every joined pair; Pairs returns them after the
// join, and Relation converts them into a relation of (join key, payload
// sum) tuples for further processing.
type MaterializeSink = sink.Materialize

// NewMaterializeSink returns a materializing sink.
func NewMaterializeSink() *MaterializeSink { return sink.NewMaterialize() }

// TopKSink keeps the k joined pairs with the largest payload sum in bounded
// memory (a per-worker k-element heap).
type TopKSink = sink.TopK

// NewTopKSink returns a top-k sink; k <= 0 keeps nothing.
func NewTopKSink(k int) *TopKSink { return sink.NewTopK(k) }
