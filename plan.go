package mpsm

import (
	"context"
	"fmt"
	"time"

	"repro/internal/exec"
	"repro/internal/planner"
	"repro/internal/sink"
)

// Agg selects the aggregate function of a GroupAggregate plan node.
type Agg = sink.Agg

// Available aggregate functions. The aggregation input of a joined pair is
// the default join projection value R.payload + S.payload; for tuple inputs
// it is the tuple payload.
const (
	// AggSum sums the values per key.
	AggSum = sink.AggSum
	// AggMin keeps the smallest value per key.
	AggMin = sink.AggMin
	// AggMax keeps the largest value per key.
	AggMax = sink.AggMax
	// AggCount counts the tuples per key.
	AggCount = sink.AggCount
)

// Plan is a composable operator DAG: scans feed joins, joins feed further
// joins, projections, aggregations or a terminal sink. Build a plan once
// with NewPlan and the node methods, then execute it — any number of times,
// even concurrently — with Engine.RunPlan:
//
//	plan := mpsm.NewPlan()
//	r := plan.Scan(relR)
//	s := plan.Scan(relS)
//	t := plan.Scan(relT)
//	rs := plan.Join(r, s)                       // (R ⋈ S), engine defaults
//	rst := plan.Join(rs, t)                     // (R ⋈ S) ⋈ T
//	plan.GroupAggregate(rst, mpsm.AggSum)       // SUM(payload) GROUP BY key
//	res, err := engine.RunPlan(ctx, plan)
//
// Joins compose because the MPSM join phase consumes and produces key-ordered
// runs: a join feeding a join materializes its projected output as an
// intermediate relation through the engine's scratch pool, and a
// GroupAggregate directly above an MPSM join runs as a streaming merge-based
// aggregation over the key-ordered output, without ever building a hash
// table.
type Plan struct {
	nodes []planNode
	err   error
	// info is set when the plan was compiled from query text (Compile); the
	// service keys its plan cache by the canonical text instead of the
	// structural shape.
	info *QueryInfo
}

// QueryInfo describes the query text a compiled plan came from.
type QueryInfo struct {
	// Text is the canonical (pretty-printed) query: equivalent spellings
	// share one Text, which is what keys the service plan cache.
	Text string
	// Head names the output relation; Columns name its key and value.
	Head    string
	Columns [2]string
}

// QueryInfo returns the query this plan was compiled from, or nil for a
// hand-built plan.
func (p *Plan) QueryInfo() *QueryInfo { return p.info }

// planNode is one deferred node spec; join options are resolved against the
// engine configuration at RunPlan time.
type planNode struct {
	kind   exec.NodeKind
	inputs []exec.NodeID
	rel    *Relation
	rng    *exec.KeyRange
	pred   func(Tuple) bool
	opts   []Option // join nodes: per-node option overrides
	mapFn  func(Tuple) Tuple
	projFn func(r, s Tuple) Tuple
	agg    Agg
	sink   Sink
}

// PlanNode is an opaque handle to one node of a Plan, used to wire later
// nodes to its output.
type PlanNode struct {
	plan *Plan
	id   exec.NodeID
}

// NewPlan returns an empty plan.
func NewPlan() *Plan { return &Plan{} }

// fail records the first builder misuse; RunPlan reports it.
func (p *Plan) fail(format string, args ...any) PlanNode {
	if p.err == nil {
		p.err = fmt.Errorf(format, args...)
	}
	return PlanNode{plan: p, id: -1}
}

// add appends a node and returns its handle.
func (p *Plan) add(n planNode) PlanNode {
	p.nodes = append(p.nodes, n)
	return PlanNode{plan: p, id: exec.NodeID(len(p.nodes) - 1)}
}

// input checks that a handle belongs to this plan.
func (p *Plan) input(n PlanNode, op string) (exec.NodeID, bool) {
	if n.plan != p || n.id < 0 || int(n.id) >= len(p.nodes) {
		p.fail("mpsm: %s input is not a node of this plan", op)
		return -1, false
	}
	return n.id, true
}

// Scan adds a scan of rel with an optional selection predicate (at most one;
// none keeps every tuple). One scan may feed several joins. The predicate
// must be a pure function of the tuple: it is evaluated concurrently from
// several workers and may run more than once per tuple.
func (p *Plan) Scan(rel *Relation, pred ...func(Tuple) bool) PlanNode {
	var pr func(Tuple) bool
	if len(pred) > 1 {
		return p.fail("mpsm: Scan takes at most one predicate, got %d", len(pred))
	}
	if len(pred) == 1 {
		pr = pred[0]
	}
	return p.add(planNode{kind: exec.NodeScan, rel: rel, pred: pr})
}

// ScanRange adds a scan of rel restricted to keys in the half-open interval
// [low, high), evaluated branch-free inside the scan, with an optional
// additional predicate (same contract as Scan's). Compiled queries lower
// fully bounded key comparisons through this node.
func (p *Plan) ScanRange(rel *Relation, low, high uint64, pred ...func(Tuple) bool) PlanNode {
	var pr func(Tuple) bool
	if len(pred) > 1 {
		return p.fail("mpsm: ScanRange takes at most one predicate, got %d", len(pred))
	}
	if len(pred) == 1 {
		pr = pred[0]
	}
	return p.add(planNode{kind: exec.NodeScan, rel: rel, rng: &exec.KeyRange{Low: low, High: high}, pred: pr})
}

// Join adds a join of the build (private) input against the probe (public)
// input. The engine's configuration — algorithm, kind, band, workers,
// scheduler, splitters — applies, overridden first by RunPlan's per-call
// options and then by the per-node opts given here (a WithSink option is
// ignored; results flow to the consuming node or the terminal sink). For
// P-MPSM the build input should be the smaller relation.
func (p *Plan) Join(build, probe PlanNode, opts ...Option) PlanNode {
	b, ok := p.input(build, "Join build")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	pr, ok := p.input(probe, "Join probe")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	return p.add(planNode{kind: exec.NodeJoin, inputs: []exec.NodeID{b, pr}, opts: opts})
}

// Map adds a tuple-to-tuple transformation of a tuple-producing input (a
// scan, projection or aggregation; use Project directly above a join).
func (p *Plan) Map(in PlanNode, fn func(Tuple) Tuple) PlanNode {
	id, ok := p.input(in, "Map")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	return p.add(planNode{kind: exec.NodeMap, inputs: []exec.NodeID{id}, mapFn: fn})
}

// Project adds an explicit pair-to-tuple projection directly above a join,
// overriding the default projection {Key: R.Key, Payload: R.Payload +
// S.Payload} that a join otherwise feeds its consumer.
func (p *Plan) Project(in PlanNode, fn func(r, s Tuple) Tuple) PlanNode {
	id, ok := p.input(in, "Project")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	return p.add(planNode{kind: exec.NodeProject, inputs: []exec.NodeID{id}, projFn: fn})
}

// GroupAggregate adds a group-by-key aggregation of its input. Directly
// above a B-MPSM, P-MPSM or D-MPSM join it runs as a streaming merge-based
// aggregation that exploits the join's key-ordered output and builds no hash
// table; above hash joins or materialized inputs it hash-aggregates. The
// output is one tuple {Key: group key, Payload: aggregate} per distinct key,
// in ascending key order.
func (p *Plan) GroupAggregate(in PlanNode, agg Agg) PlanNode {
	id, ok := p.input(in, "GroupAggregate")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	return p.add(planNode{kind: exec.NodeGroupAggregate, inputs: []exec.NodeID{id}, agg: agg})
}

// Sink terminates the plan in s, which receives the raw joined pairs of the
// input join (a nil s selects the built-in max-sum aggregate). A sink node
// must be the plan root and sit directly above a join. Like WithSink, the
// sink is stateful: reuse a plan with a sink node only for sequential
// executions.
func (p *Plan) Sink(in PlanNode, s Sink) PlanNode {
	id, ok := p.input(in, "Sink")
	if !ok {
		return PlanNode{plan: p, id: -1}
	}
	return p.add(planNode{kind: exec.NodeSink, inputs: []exec.NodeID{id}, sink: s})
}

// PlanJoin is the outcome of one join node of an executed plan, in plan
// construction order.
type PlanJoin struct {
	// Result is the join's full result (phase breakdown, NUMA stats, ...).
	Result *Result
	// Disk is non-nil for D-MPSM joins.
	Disk *DiskStats
}

// PlanResult is the outcome of one plan execution.
type PlanResult struct {
	// Output is the materialized output of the plan root — the projected
	// join result, the aggregated groups, or the transformed tuple stream —
	// owned by the caller. It is nil when the plan terminates in a Sink
	// node: the sink received the stream.
	Output *Relation
	// Matches and MaxSum report the root join's cardinality and (with the
	// default sink) the max-sum aggregate when the plan root is a Sink
	// node; both are zero otherwise.
	Matches uint64
	MaxSum  uint64
	// Joins holds the per-join results in join node order.
	Joins []PlanJoin
	// ScanTime is the total time spent scanning and filtering base
	// relations.
	ScanTime time.Duration
	// Total is the end-to-end elapsed time of the plan.
	Total time.Duration
}

// RunPlan validates and executes a plan. Per-call options override the
// engine's configuration for every join of the plan (per-node Join options
// override both). Intermediate results are drawn from the engine's scratch
// pool when it has one; the returned Output is always freshly allocated. A
// canceled context aborts the plan at the next operator boundary (or, inside
// a join, at the next phase boundary or chunk) and returns ctx.Err().
func (e *Engine) RunPlan(ctx context.Context, p *Plan, opts ...Option) (*PlanResult, error) {
	ep, global, err := e.buildExecPlan(p, opts)
	if err != nil {
		return nil, err
	}
	pool := e.scratchFor(global)
	if global.autoPlan {
		opt := &planner.Optimizer{Profile: e.profileFor, Rewrite: true}
		optimized, _, err := opt.Optimize(ep)
		if err != nil {
			return nil, err
		}
		ep = optimized
	}

	pr, err := exec.RunPlanFor(ctx, ep, pool, global.owner)
	if err != nil {
		return nil, err
	}
	return convertPlanResult(pr), nil
}

// convertPlanResult lifts the exec result into the public representation.
func convertPlanResult(pr *exec.PlanResult) *PlanResult {
	res := &PlanResult{
		Output:   pr.Output,
		Matches:  pr.Matches,
		MaxSum:   pr.MaxSum,
		ScanTime: pr.ScanTime,
		Total:    pr.Total,
	}
	for _, j := range pr.Joins { // already sorted by node ID
		res.Joins = append(res.Joins, PlanJoin{Result: j.Result, Disk: j.Disk})
	}
	return res
}

// buildExecPlan lowers the public plan into the exec representation,
// resolving per-node join options over the engine + per-call configuration.
// The auto-planner's rewrites happen on this lowered form, after per-node
// options have been applied, which is what lets optimized physical choices
// override them.
func (e *Engine) buildExecPlan(p *Plan, opts []Option) (*exec.Plan, settings, error) {
	global := e.resolve(opts)
	if p == nil || len(p.nodes) == 0 {
		return nil, global, fmt.Errorf("mpsm: RunPlan requires a non-empty plan")
	}
	if p.err != nil {
		return nil, global, p.err
	}
	ep := &exec.Plan{}
	for _, n := range p.nodes {
		switch n.kind {
		case exec.NodeScan:
			if n.rng != nil {
				ep.AddScanRange(n.rel, n.rng, predicate(n.pred))
			} else {
				ep.AddScan(n.rel, predicate(n.pred))
			}
		case exec.NodeJoin:
			cfg := e.resolve(opts)
			for _, o := range n.opts {
				o(&cfg)
			}
			ep.AddJoin(n.inputs[0], n.inputs[1], cfg.algorithm, cfg.coreOptions(nil), cfg.diskOptions())
		case exec.NodeMap:
			ep.AddMap(n.inputs[0], n.mapFn)
		case exec.NodeProject:
			ep.AddProject(n.inputs[0], projection(n.projFn))
		case exec.NodeGroupAggregate:
			ep.AddGroupAggregate(n.inputs[0], n.agg)
		case exec.NodeSink:
			ep.AddSink(n.inputs[0], n.sink)
		}
	}
	return ep, global, nil
}

// predicate adapts a public predicate to the exec representation (Tuple is
// an alias of relation.Tuple, so this is a plain type conversion).
func predicate(pred func(Tuple) bool) exec.Predicate { return exec.Predicate(pred) }

// projection adapts a public projection to the sink representation.
func projection(fn func(r, s Tuple) Tuple) sink.Projection { return sink.Projection(fn) }
