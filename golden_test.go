package mpsm

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenQueries is the EXPLAIN corpus: each query is compiled against the
// fixed catalog and its rendered plan compared to testdata/explain.golden.
// The engine runs without auto-planning and with a fixed worker count so the
// rendering is deterministic.
var goldenQueries = []string{
	"ans(K, V) :- r(K, V)",
	"ans(K, K) :- r(K, _)",
	"ans(K, V) :- r(K, V), K >= 100, K < 900",
	"ans(K, V) :- r(K, V), K >= 100, K < 900, K != 500, V > 7",
	"ans(K, V) :- r(K, _), s(K, V)",
	"ans(K, X) :- r(K, X), s(K, _), t(K, _)",
	"ans(K, Sum) :- r(K, X), s(K, Y), t(K, Z), X > 10, agg sum(Z)",
	"ans(K, N) :- r(K, _), s(K, _), agg count(*)",
	"ans(X, V) :- r(X, _), s(Y, V), |X - Y| <= 10",
	"ans(K, M) :- r(K, V), agg max(V)",
}

// TestExplainGolden: the rendered EXPLAIN plan of every corpus query matches
// its golden file. Regenerate with `go test -run TestExplainGolden -update`.
func TestExplainGolden(t *testing.T) {
	cat := queryCatalog()
	engine := New(WithWorkers(2))

	var b strings.Builder
	for _, src := range goldenQueries {
		p, err := Compile(src, cat)
		if err != nil {
			t.Fatalf("Compile(%q): %v", src, err)
		}
		ex, err := engine.Explain(p)
		if err != nil {
			t.Fatalf("Explain(%q): %v", src, err)
		}
		fmt.Fprintf(&b, "=== %s\n%s\n\n", p.QueryInfo().Text, ex.String())
	}
	got := b.String()

	path := filepath.Join("testdata", "explain.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file: %v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Errorf("EXPLAIN output diverges from %s (run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
