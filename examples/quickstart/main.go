// Quickstart: generate a small dataset and run the range-partitioned MPSM
// join (P-MPSM) through the Engine API, printing the phase breakdown and the
// result of the paper's evaluation query max(R.payload + S.payload).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"time"

	mpsm "repro"
)

func main() {
	// R is the smaller (private) input, S the larger (public) one; S
	// references R's keys like a fact table referencing a dimension table.
	r := mpsm.GenerateUniform("R", 500_000, 42)
	s := mpsm.GenerateForeignKey("S", r, 2_000_000, 43)

	// Construct the engine once; it is reusable and safe for concurrent use.
	engine := mpsm.New(
		mpsm.WithAlgorithm(mpsm.PMPSM),
		mpsm.WithWorkers(8),
	)
	res, err := engine.Join(context.Background(), r, s)
	if err != nil {
		panic(err)
	}

	fmt.Printf("joined |R|=%d with |S|=%d using %s and %d workers\n",
		r.Len(), s.Len(), res.Algorithm, res.Workers)
	fmt.Printf("total time: %s\n", res.Total.Round(time.Microsecond))
	for _, p := range res.Phases {
		fmt.Printf("  %-8s %s\n", p.Name+":", p.Duration.Round(time.Microsecond))
	}
	fmt.Printf("join cardinality:        %d\n", res.Matches)
	fmt.Printf("max(R.payload+S.payload): %d\n", res.MaxSum)
}
