// Service: run many concurrent clients through the multi-tenant serving
// layer — admission control carves per-query memory budgets out of the
// engine's scratch pool, weighted fair-share scheduling interleaves the
// queries' morsels, and the plan cache amortizes the cost-based planner to
// one miss per plan shape.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	mpsm "repro"
)

func main() {
	r := mpsm.GenerateUniform("R", 100_000, 42)
	s := mpsm.GenerateForeignKey("S", r, 400_000, 43)

	engine := mpsm.New(mpsm.WithScratchPool(true), mpsm.WithAutoPlan(true))
	svc := mpsm.NewService(engine,
		mpsm.WithMaxMemory(64<<20),               // admission limit: 64 MiB across all queries
		mpsm.WithAdmissionQueue(32, time.Second), // beyond it, queue up to 32 queries for up to 1s
		mpsm.WithDefaultBudget(8<<20),            // each query reserves 8 MiB unless it declares otherwise
	)
	defer svc.Close()

	// Two tenants share the service; "gold" carries twice the fair-share
	// weight of "free" and therefore receives twice the busy slot time.
	const perClient = 8
	var wg sync.WaitGroup
	counts := make([]int, 2)
	for c, tenant := range []string{"free", "gold"} {
		wg.Add(1)
		go func(c int, tenant string, weight int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				res, err := svc.Join(context.Background(), r, s,
					mpsm.WithQueryWeight(weight),
					mpsm.WithQueryLabel(tenant))
				if err != nil {
					panic(err)
				}
				if res.Matches == 0 {
					panic("join produced no matches")
				}
				counts[c]++
			}
		}(c, tenant, c+1)
	}
	wg.Wait()

	st := svc.Stats()
	fmt.Printf("completed %d + %d queries across two tenants\n", counts[0], counts[1])
	fmt.Printf("admission: %d admitted, %d queued, %d rejected\n",
		st.Admission.Admitted, st.Admission.Queued, st.Admission.Rejected)
	total := st.PlanCache.Hits + st.PlanCache.Misses
	fmt.Printf("plan cache: %d/%d hits (%.0f%%)\n",
		st.PlanCache.Hits, total, 100*float64(st.PlanCache.Hits)/float64(total))
	fmt.Printf("memory reserved after drain: %d bytes\n", st.Memory.ReservedBytes)
}
