// Service: run many concurrent clients through the multi-tenant serving
// layer — admission control carves per-query memory budgets out of the
// engine's scratch pool, weighted fair-share scheduling interleaves the
// queries' morsels, and the plan cache amortizes the cost-based planner to
// one miss per plan shape. Client errors are collected, not panicked on:
// transient admission pressure (mpsm.Retryable) is retried with backoff,
// anything else fails the run cleanly.
//
// Run with:
//
//	go run ./examples/service
package main

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	mpsm "repro"
)

// runTenant issues perClient joins for one tenant, retrying transient
// admission pressure with doubling backoff, and reports the first permanent
// error (or nil) on errs.
func runTenant(svc *mpsm.Service, r, s *mpsm.Relation, tenant string, weight, perClient int, done *int, errs chan<- error) {
	for i := 0; i < perClient; i++ {
		var res *mpsm.Result
		var err error
		backoff := time.Millisecond
		for attempt := 0; attempt < 5; attempt++ {
			res, err = svc.Join(context.Background(), r, s,
				mpsm.WithQueryWeight(weight),
				mpsm.WithQueryLabel(tenant))
			if err == nil || !mpsm.Retryable(err) {
				break
			}
			time.Sleep(backoff)
			backoff *= 2
		}
		if err != nil {
			errs <- fmt.Errorf("%s query %d: %w", tenant, i, err)
			return
		}
		if res.Matches == 0 {
			errs <- fmt.Errorf("%s query %d: join produced no matches", tenant, i)
			return
		}
		*done++
	}
	errs <- nil
}

func main() {
	r := mpsm.GenerateUniform("R", 100_000, 42)
	s := mpsm.GenerateForeignKey("S", r, 400_000, 43)

	engine := mpsm.New(mpsm.WithScratchPool(true), mpsm.WithAutoPlan(true))
	svc := mpsm.NewService(engine,
		mpsm.WithMaxMemory(64<<20),               // admission limit: 64 MiB across all queries
		mpsm.WithAdmissionQueue(32, time.Second), // beyond it, queue up to 32 queries for up to 1s
		mpsm.WithDefaultBudget(8<<20),            // each query reserves 8 MiB unless it declares otherwise
	)
	defer svc.Close()

	// Two tenants share the service; "gold" carries twice the fair-share
	// weight of "free" and therefore receives twice the busy slot time.
	const perClient = 8
	var wg sync.WaitGroup
	counts := make([]int, 2)
	errs := make(chan error, 2)
	for c, tenant := range []string{"free", "gold"} {
		wg.Add(1)
		go func(c int, tenant string, weight int) {
			defer wg.Done()
			runTenant(svc, r, s, tenant, weight, perClient, &counts[c], errs)
		}(c, tenant, c+1)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, "service example:", err)
			os.Exit(1)
		}
	}

	st := svc.Stats()
	fmt.Printf("completed %d + %d queries across two tenants\n", counts[0], counts[1])
	fmt.Printf("admission: %d admitted, %d queued, %d rejected\n",
		st.Admission.Admitted, st.Admission.Queued, st.Admission.Rejected)
	if st.Degradation.AdmissionRetries > 0 {
		fmt.Printf("degradation: %d admission retries, %d budget shrinks, %d narrowed queries\n",
			st.Degradation.AdmissionRetries, st.Degradation.BudgetShrinks, st.Degradation.NarrowedQueries)
	}
	total := st.PlanCache.Hits + st.PlanCache.Misses
	fmt.Printf("plan cache: %d/%d hits (%.0f%%)\n",
		st.PlanCache.Hits, total, 100*float64(st.PlanCache.Hits)/float64(total))
	fmt.Printf("memory reserved after drain: %d bytes\n", st.Memory.ReservedBytes)
}
