// Warehouse: the operational business-intelligence scenario that motivates the
// paper — a large fact table (orderlines) joined with a smaller dimension
// table (orders) entirely in main memory, "in real time", on all cores.
//
// One Engine is constructed and then reused for every query, the way a
// serving layer would hold it: the algorithm is switched per call with a
// per-join option. The example compares the three algorithm families on the
// same data, shows why the smaller relation should play the private role
// (role reversal, Section 5.4 of the paper), and reports the simulated NUMA
// behaviour that explains the paper's results on large NUMA machines.
//
// Run with:
//
//	go run ./examples/warehouse
package main

import (
	"context"
	"fmt"
	"time"

	mpsm "repro"
)

func main() {
	ctx := context.Background()

	// A merchandiser's day: 250k orders, each with ~8 orderlines
	// (multiplicity 8, the paper's TPC-C-like case).
	orders := mpsm.GenerateUniform("orders", 250_000, 7)
	orderlines := mpsm.GenerateForeignKey("orderlines", orders, 2_000_000, 8)

	fmt.Printf("orders: %d rows, orderlines: %d rows\n\n", orders.Len(), orderlines.Len())

	// One engine serves every query below.
	engine := mpsm.New(mpsm.WithWorkers(8), mpsm.WithNUMATracking())

	// Compare the algorithms on the analytical join.
	for _, alg := range []mpsm.Algorithm{mpsm.PMPSM, mpsm.BMPSM, mpsm.RadixHash, mpsm.Wisconsin} {
		res, err := engine.Join(ctx, orders, orderlines, mpsm.WithAlgorithm(alg))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12s total %-12s matches %-10d NUMA: %5.1f%% remote, %d sync ops, model cost %s\n",
			res.Algorithm, res.Total.Round(time.Microsecond), res.Matches,
			100*res.NUMA.RemoteFraction(), res.NUMA.SyncOps,
			res.SimulatedNUMACost.Round(time.Microsecond))
	}

	// Role reversal: the same join with the large fact table as private
	// input. The range-partitioning and join phases get more expensive, so
	// always keep the smaller relation private.
	fmt.Println("\nrole reversal (P-MPSM):")
	good, _ := engine.Join(ctx, orders, orderlines)
	bad, _ := engine.Join(ctx, orderlines, orders)
	fmt.Printf("  private = orders (dimension):    %s\n", good.Total.Round(time.Microsecond))
	fmt.Printf("  private = orderlines (fact):     %s\n", bad.Total.Round(time.Microsecond))
}
