// Diskjoin: runs the disk-enabled, memory-constrained D-MPSM variant
// (Section 3.1 of the paper). Both inputs are sorted into runs that are
// spilled to a simulated disk; the join then walks a global page index in key
// order while a prefetcher keeps the next pages warm and a buffer pool
// enforces a strict RAM budget for the public input.
//
// Run with:
//
//	go run ./examples/diskjoin
package main

import (
	"context"
	"fmt"
	"time"

	mpsm "repro"
)

func main() {
	r := mpsm.GenerateUniform("R", 300_000, 21)
	s := mpsm.GenerateForeignKey("S", r, 1_200_000, 22)

	engine := mpsm.New(mpsm.WithWorkers(4))

	for _, budget := range []int{0, 32, 8} {
		res, stats, err := engine.JoinWithDiskStats(context.Background(), r, s,
			mpsm.WithDisk(mpsm.DiskConfig{PageSize: 1024, PageBudget: budget}))
		if err != nil {
			panic(err)
		}
		label := fmt.Sprintf("%d pages", budget)
		if budget == 0 {
			label = "unlimited"
		}
		fmt.Printf("RAM budget %-10s total %-12s matches %-8d", label, res.Total.Round(time.Microsecond), res.Matches)
		fmt.Printf(" disk: %d writes / %d reads; pool: max %d resident, %d hits, %d evictions\n",
			stats.PageWrites, stats.PageReads, stats.Pool.MaxResident, stats.Pool.Hits, stats.Pool.Evictions)
	}
	fmt.Println("\nthe join result is identical under every budget; only the paging behaviour changes")
}
