// Skew handling: reproduces the paper's worst-case workload (Section 5.6) —
// negatively correlated skew, where 80% of R's keys sit at the high end of the
// domain while 80% of S's keys sit at the low end — and shows how P-MPSM's
// CDF-based splitter computation flattens the per-worker load compared to
// plain equi-height partitioning of R.
//
// Run with:
//
//	go run ./examples/skewhandling
package main

import (
	"context"
	"fmt"
	"time"

	mpsm "repro"
)

func main() {
	// A key domain of 4·|R| keeps the negatively correlated join selective
	// but non-empty at this scale.
	const domain = 4 * 500_000
	r := mpsm.GenerateSkewedWithDomain("R", 500_000, domain, mpsm.SkewHigh80, 11)
	s := mpsm.GenerateSkewedWithDomain("S", 2_000_000, domain, mpsm.SkewLow80, 12)
	fmt.Printf("R: %d rows skewed to the high end; S: %d rows skewed to the low end\n\n", r.Len(), s.Len())

	engine := mpsm.New(mpsm.WithWorkers(8), mpsm.WithPerWorkerStats())

	for _, strategy := range []mpsm.SplitterStrategy{mpsm.SplitterEquiHeight, mpsm.SplitterEquiCost} {
		res, err := engine.Join(context.Background(), r, s, mpsm.WithSplitters(strategy))
		if err != nil {
			panic(err)
		}
		fmt.Printf("splitter strategy %-12v total %s, matches %d\n", strategy, res.Total.Round(time.Microsecond), res.Matches)

		// Per-worker work assignment: the equi-cost splitters should make
		// the combined sort + join work (nearly) equal; plain equi-height
		// partitioning leaves the workers that own the S-heavy low key
		// ranges far behind (the paper's Figure 16).
		var minWork, maxWork int
		for i, wb := range res.PerWorker {
			var total time.Duration
			for _, p := range wb.Phases {
				total += p.Duration
			}
			work := wb.PrivateTuples + wb.PublicScanned
			if i == 0 || work < minWork {
				minWork = work
			}
			if work > maxWork {
				maxWork = work
			}
			fmt.Printf("  worker %2d: |Ri|=%-7d S scanned=%-8d matches=%-7d wall clock %s\n",
				wb.Worker, wb.PrivateTuples, wb.PublicScanned, wb.Matches, total.Round(time.Microsecond))
		}
		if minWork > 0 {
			fmt.Printf("  work imbalance (most/least loaded worker): %.2fx\n\n", float64(maxWork)/float64(minWork))
		}
	}
}
