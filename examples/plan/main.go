// Plan: demonstrates composable operator plans on top of the MPSM join.
//
// The MPSM join phase consumes and produces key-ordered runs, which is
// exactly what lets sort-merge joins compose into larger query plans without
// re-sorting. This example builds the 3-way star query
//
//	SELECT key, SUM(payload)
//	FROM R JOIN S USING (key) JOIN T USING (key)
//	WHERE R.key < 2^31
//	GROUP BY key
//
// as an operator plan: two scans with a pushed-down selection, two joins, and
// a GroupAggregate that — sitting directly above the key-ordered P-MPSM
// output — runs as a streaming merge-based aggregation without ever building
// a hash table. The same plan is then re-run with the first join switched to
// the radix hash join, whose unordered output makes the aggregate fall back
// to hashing: identical results, different machinery.
//
// Run with:
//
//	go run ./examples/plan
package main

import (
	"context"
	"fmt"

	mpsm "repro"
)

func main() {
	ctx := context.Background()
	r := mpsm.GenerateUniform("R", 200_000, 41)
	s := mpsm.GenerateForeignKey("S", r, 600_000, 42)
	t := mpsm.GenerateForeignKey("T", r, 400_000, 43)

	// One pooled engine serves every plan execution; intermediate relations
	// between the joins come from the scratch pool, not the garbage
	// collector.
	engine := mpsm.New(mpsm.WithWorkers(8), mpsm.WithScratchPool(true))

	lowHalf := func(t mpsm.Tuple) bool { return t.Key < 1<<31 }

	build := func(firstJoin mpsm.Algorithm) *mpsm.Plan {
		plan := mpsm.NewPlan()
		rs := plan.Join(plan.Scan(r, lowHalf), plan.Scan(s, lowHalf), mpsm.WithAlgorithm(firstJoin))
		rst := plan.Join(rs, plan.Scan(t))
		plan.GroupAggregate(rst, mpsm.AggSum)
		return plan
	}

	res, err := engine.RunPlan(ctx, build(mpsm.PMPSM))
	if err != nil {
		panic(err)
	}
	fmt.Printf("streaming plan: %d groups in %s (scan %s)\n",
		res.Output.Len(), res.Total.Round(1000), res.ScanTime.Round(1000))
	for i, j := range res.Joins {
		fmt.Printf("  join %d: %s, %d matches in %s\n",
			i+1, j.Result.Algorithm, j.Result.Matches, j.Result.Total.Round(1000))
	}
	for _, g := range res.Output.Tuples[:3] {
		fmt.Printf("  group key=%-12d sum=%d\n", g.Key, g.Payload)
	}

	// Same plan, hash-join first stage: the aggregate silently switches to
	// its hash fallback, and the groups are identical.
	hashRes, err := engine.RunPlan(ctx, build(mpsm.RadixHash))
	if err != nil {
		panic(err)
	}
	same := hashRes.Output.Len() == res.Output.Len()
	for i := 0; same && i < res.Output.Len(); i++ {
		same = hashRes.Output.Tuples[i] == res.Output.Tuples[i]
	}
	fmt.Printf("\nradix-hash first stage: %d groups in %s — identical to the streaming plan: %v\n",
		hashRes.Output.Len(), hashRes.Total.Round(1000), same)

	// With WithAutoPlan the engine stops taking orders: sampled statistics
	// feed a cost model that picks the algorithm per join, reorders the join
	// chain by estimated intermediate size, chooses the scheduler, and pins
	// the aggregation strategy. Explain shows the decisions with estimated
	// cardinalities; ExplainAnalyze runs the plan and adds the actuals.
	autoPlan := mpsm.NewPlan()
	rs := autoPlan.Join(autoPlan.Scan(r, lowHalf), autoPlan.Scan(s, lowHalf))
	rst := autoPlan.Join(rs, autoPlan.Scan(t))
	autoPlan.GroupAggregate(rst, mpsm.AggSum)

	ex, autoRes, err := engine.ExplainAnalyze(ctx, autoPlan, mpsm.WithAutoPlan(true))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nauto-planned (estimated vs actual cardinalities):\n%s\n", ex)
	autoSame := autoRes.Output.Len() == res.Output.Len()
	for i := 0; autoSame && i < res.Output.Len(); i++ {
		autoSame = autoRes.Output.Tuples[i] == res.Output.Tuples[i]
	}
	fmt.Printf("auto plan: %d groups in %s — identical to the manual plans: %v\n",
		autoRes.Output.Len(), autoRes.Total.Round(1000), autoSame)
}
