// Streaming: demonstrates the result-streaming side of the Engine API.
//
// The legacy one-shot Join discards the joined tuples and returns a single
// aggregate; the Engine instead streams every matching pair into a Sink, or
// — through JoinStream — into a range-over-func iterator. This example shows
// three consumers on the same join:
//
//  1. a TopK sink that keeps the 5 best pairs by payload sum in bounded
//     memory (the paper's evaluation query is the k = 1 special case),
//  2. a materializing sink that produces a relation usable as the input of a
//     follow-up join (a two-stage pipeline),
//  3. JoinStream with early termination: the consumer stops after a handful
//     of pairs and the break cancels the join mid-flight via its context.
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"

	mpsm "repro"
)

func main() {
	ctx := context.Background()
	r := mpsm.GenerateUniform("R", 200_000, 31)
	s := mpsm.GenerateForeignKey("S", r, 800_000, 32)

	engine := mpsm.New(mpsm.WithWorkers(8))

	// 1. Top-k by payload sum, in bounded memory.
	top := mpsm.NewTopKSink(5)
	if _, err := engine.Join(ctx, r, s, mpsm.WithSink(top)); err != nil {
		panic(err)
	}
	fmt.Println("top 5 pairs by R.payload + S.payload:")
	for i, p := range top.Top() {
		fmt.Printf("  %d. key=%-12d sum=%d\n", i+1, p.R.Key, p.Sum())
	}

	// 2. Materialize the join result as a relation and feed it onward: the
	// engine is reusable, so the second stage is just another Join call.
	mat := mpsm.NewMaterializeSink()
	if _, err := engine.Join(ctx, r, s, mpsm.WithSink(mat)); err != nil {
		panic(err)
	}
	joined := mat.Relation("R⋈S")
	fmt.Printf("\nmaterialized %d result tuples into %v\n", joined.Len(), joined)
	second, err := engine.Join(ctx, r, joined)
	if err != nil {
		panic(err)
	}
	fmt.Printf("second-stage join R ⋈ (R⋈S): %d matches\n", second.Matches)

	// 3. Stream pairs and stop early: breaking out of the loop cancels the
	// underlying join through its context, so no work is wasted on results
	// nobody will read.
	seq, errf := engine.JoinStream(ctx, r, s)
	n := 0
	for rt, st := range seq {
		n++
		if n <= 3 {
			fmt.Printf("streamed pair: key=%d payloads=(%d, %d)\n", rt.Key, rt.Payload, st.Payload)
		}
		if n == 10 {
			break // cancels the join mid-flight
		}
	}
	if err := errf(); err != nil {
		panic(err)
	}
	fmt.Printf("consumed %d pairs, then stopped — the join was canceled, not drained\n", n)
}
