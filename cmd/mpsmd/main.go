// Command mpsmd serves MPSM joins over HTTP: a thin front-end over the
// mpsm.Service serving layer (admission control, fair-share scheduling, plan
// cache) with an in-memory catalog of named relations.
//
// Start a server and run a join:
//
//	mpsmd -addr :7737 -pool -auto &
//	curl -s localhost:7737/v1/relations -d '{"name":"r","generate":{"size":100000,"seed":1}}'
//	curl -s localhost:7737/v1/relations -d '{"name":"s","generate":{"size":400000,"seed":2,"foreign_key_of":"r"}}'
//	curl -s localhost:7737/v1/join -d '{"r":"r","s":"s"}'
//	curl -s localhost:7737/v1/query -d '{"query":"ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y)","limit":5}'
//	curl -s localhost:7737/v1/stats
//
// Joins admitted beyond the memory limit queue FIFO (429 once the queue is
// full); concurrent joins interleave under weighted fair-share scheduling; and
// repeated plan shapes are served from the plan cache — /v1/stats reports all
// three.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	mpsm "repro"
)

func main() {
	var (
		addr          = flag.String("addr", ":7737", "listen address")
		workers       = flag.Int("workers", 0, "engine degree of parallelism (default GOMAXPROCS)")
		usePool       = flag.Bool("pool", true, "enable the engine-wide scratch pool")
		autoPlan      = flag.Bool("auto", true, "let the cost-based planner pick physical plans (memoized by the plan cache)")
		maxMemory     = flag.Int64("max-memory", 0, "admission memory limit in bytes (0 = pool default)")
		queueLimit    = flag.Int("queue", 0, "admission queue limit (0 = unbounded)")
		queueTimeout  = flag.Duration("queue-timeout", 0, "max time a query waits for admission (0 = query context only)")
		fairSlots     = flag.Int("fair-slots", 0, "fair-share execution slots (default GOMAXPROCS)")
		cacheSize     = flag.Int("cache-size", 0, "plan cache capacity (0 = default 256)")
		defaultBudget = flag.Int64("default-budget", 0, "per-query memory budget in bytes when the request declares none (0 = derive from input sizes)")
	)
	execDeadline := flag.Duration("exec-deadline", 0, "per-query execution deadline (0 = none)")
	flag.Parse()

	// MPSM_FAULTS arms deterministic fault injection across the whole
	// service, e.g. MPSM_FAULTS='seed:42,panic:0.05,stall:0.1@200us'.
	faults, err := mpsm.ParseFaultSpec(os.Getenv("MPSM_FAULTS"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmd: MPSM_FAULTS:", err)
		os.Exit(2)
	}

	engine := mpsm.New(
		mpsm.WithWorkers(*workers),
		mpsm.WithScratchPool(*usePool),
		mpsm.WithAutoPlan(*autoPlan),
	)
	svc := mpsm.NewService(engine,
		mpsm.WithMaxMemory(*maxMemory),
		mpsm.WithAdmissionQueue(*queueLimit, *queueTimeout),
		mpsm.WithFairSlots(*fairSlots),
		mpsm.WithPlanCacheSize(*cacheSize),
		mpsm.WithDefaultBudget(*defaultBudget),
		mpsm.WithExecDeadline(*execDeadline),
		mpsm.WithServiceFaults(faults),
	)

	httpSrv := &http.Server{Addr: *addr, Handler: newServer(svc)}

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting connections,
	// drain in-flight HTTP requests (bounded by the shutdown timeout), then
	// close the service — Close itself waits for queries already admitted
	// or queued, so the drain order is connections first, queries second.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		fmt.Println("mpsmd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
		_ = svc.Close()
	}()

	if faults != nil {
		fmt.Printf("mpsmd: fault injection armed: %v\n", faults)
	}
	fmt.Printf("mpsmd listening on %s\n", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "mpsmd:", err)
		os.Exit(1)
	}
	<-done
	fmt.Println("mpsmd: drained")
}
