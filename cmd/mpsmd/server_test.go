package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	mpsm "repro"
	"repro/internal/mergejoin"
)

// newTestServer spins up the handler over a default service; the caller gets
// the httptest server and the underlying mpsm.Service for stats assertions.
func newTestServer(t *testing.T) (*httptest.Server, *mpsm.Service) {
	t.Helper()
	svc := mpsm.NewService(mpsm.New(mpsm.WithWorkers(2), mpsm.WithAutoPlan(true)))
	ts := httptest.NewServer(newServer(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts, svc
}

// post sends a JSON body and decodes the JSON response into out (if non-nil),
// returning the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestServerJoinEndToEnd(t *testing.T) {
	ts, svc := newTestServer(t)

	// Register R and S through the API; generation is seed-deterministic, so
	// the oracle can be computed on an identical local copy.
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 2000, Seed: 7}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Generate: &generateSpec{Size: 8000, Seed: 8, ForeignKeyOf: "R"}}, nil); code != http.StatusCreated {
		t.Fatalf("create S: status %d", code)
	}
	r := mpsm.GenerateUniform("R", 2000, 7)
	s := mpsm.GenerateForeignKey("S", r, 8000, 8)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	var res joinResponse
	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "R", S: "S", Label: "http"}, &res); code != http.StatusOK {
		t.Fatalf("join: status %d", code)
	}
	if res.Matches != want.Count || res.MaxSum != want.Max {
		t.Fatalf("join over HTTP = %d/%d, want %d/%d", res.Matches, res.MaxSum, want.Count, want.Max)
	}

	// The repeated join hits the plan cache; /v1/stats reports it.
	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "R", S: "S"}, &res); code != http.StatusOK {
		t.Fatalf("repeat join: status %d", code)
	}
	var stats mpsm.ServiceStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Admitted != 2 || stats.PlanCache.Hits != 1 {
		t.Fatalf("stats after two joins = admitted %d, cache hits %d; want 2 and 1",
			stats.Admission.Admitted, stats.PlanCache.Hits)
	}
	if svc.Stats().Memory.ReservedBytes != 0 {
		t.Fatal("reservations leaked after HTTP joins")
	}
}

func TestServerExplicitTuplesAndAlgorithm(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Tuples: [][2]uint64{{1, 10}, {2, 20}, {3, 30}}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Tuples: [][2]uint64{{2, 5}, {2, 7}, {9, 1}}}, nil); code != http.StatusCreated {
		t.Fatalf("create S: status %d", code)
	}
	var res joinResponse
	if code := post(t, ts.URL+"/v1/join",
		joinRequest{R: "R", S: "S", Algorithm: "wisconsin", Workers: 2}, &res); code != http.StatusOK {
		t.Fatalf("join: status %d", code)
	}
	// Key 2 matches twice: payload sums 25 and 27.
	if res.Matches != 2 || res.MaxSum != 27 {
		t.Fatalf("join = %d/%d, want 2/27", res.Matches, res.MaxSum)
	}
	// The pinned algorithm is honored even though the service auto-plans.
	if res.Algorithm != "Wisconsin" {
		t.Fatalf("algorithm = %q, want the pinned Wisconsin", res.Algorithm)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "nope", S: "nada"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 100, Seed: 1}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "bad"}, nil); code != http.StatusBadRequest {
		t.Fatalf("neither tuples nor generate: status %d, want 400", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Generate: &generateSpec{Size: 100, Seed: 2, ForeignKeyOf: "ghost"}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown parent: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/join",
		joinRequest{R: "R", S: "R", Algorithm: "bogosort"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad algorithm: status %d, want 400", code)
	}
	// An admission budget that can never fit maps to 413.
	engine := mpsm.New()
	small := mpsm.NewService(engine, mpsm.WithMaxMemory(1<<20))
	defer small.Close()
	ts2 := httptest.NewServer(newServer(small))
	defer ts2.Close()
	if code := post(t, ts2.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 100, Seed: 1}}, nil); code != http.StatusCreated {
		t.Fatal("create R on small service failed")
	}
	if code := post(t, ts2.URL+"/v1/join",
		joinRequest{R: "R", S: "R", BudgetBytes: 2 << 20}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized budget: status %d, want 413", code)
	}
}

// TestServerQuery: a three-way aggregation query over HTTP matches a locally
// computed plan over identical (seed-deterministic) relations, explain
// returns the rendered plan, limit truncates, and repeated queries hit the
// text-keyed plan cache.
func TestServerQuery(t *testing.T) {
	ts, _ := newTestServer(t)

	for _, req := range []createRelationRequest{
		{Name: "r", Generate: &generateSpec{Size: 1 << 11, Seed: 41}},
		{Name: "s", Generate: &generateSpec{Size: 1 << 12, Seed: 42, ForeignKeyOf: "r"}},
		{Name: "t", Generate: &generateSpec{Size: 1 << 12, Seed: 43, ForeignKeyOf: "r"}},
	} {
		if code := post(t, ts.URL+"/v1/relations", req, nil); code != http.StatusCreated {
			t.Fatalf("create %s: status %d", req.Name, code)
		}
	}

	const src = "ans(K, Sum) :- r(K, X), s(K, Y), t(K, Z), X > 10, agg sum(Z)"
	var res queryResponse
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{Query: src, Explain: true, Label: "http-query"}, &res); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}

	// Re-run the same query locally on identical generated inputs.
	r := mpsm.GenerateUniform("r", 1<<11, 41)
	cat := mpsm.MapCatalog{
		"r": r,
		"s": mpsm.GenerateForeignKey("s", r, 1<<12, 42),
		"t": mpsm.GenerateForeignKey("t", r, 1<<12, 43),
	}
	want, err := mpsm.New(mpsm.WithWorkers(2)).Query(t.Context(), src, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != want.Output.Len() {
		t.Fatalf("query over HTTP returned %d rows, want %d", res.Rows, want.Output.Len())
	}
	if res.Query != src+"." {
		t.Fatalf("canonical query = %q", res.Query)
	}
	if res.Plan == "" || !bytes.Contains([]byte(res.Plan), []byte("GroupAggregate")) {
		t.Fatalf("explain plan missing or incomplete: %q", res.Plan)
	}

	// Limit truncates and flags it.
	var limited queryResponse
	if code := post(t, ts.URL+"/v1/query", queryRequest{Query: src, Limit: 3}, &limited); code != http.StatusOK {
		t.Fatalf("limited query: status %d", code)
	}
	if len(limited.Tuples) != 3 || !limited.Truncated || limited.Rows != want.Output.Len() {
		t.Fatalf("limit: got %d tuples (truncated=%v, rows=%d), want 3 of %d",
			len(limited.Tuples), limited.Truncated, limited.Rows, want.Output.Len())
	}

	// A differently spelled but equivalent query shares the cached plan.
	var stats mpsm.ServiceStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	hitsBefore := stats.PlanCache.Hits
	respell := "ans(K,Sum) :- r(K,X), s(K,Y), t(K,Z), 10 < X, agg sum(Z)."
	if code := post(t, ts.URL+"/v1/query", queryRequest{Query: respell}, &res); code != http.StatusOK {
		t.Fatalf("respelled query: status %d", code)
	}
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats.PlanCache.Hits <= hitsBefore {
		t.Fatalf("respelled query missed the text-keyed plan cache: hits %d -> %d",
			hitsBefore, stats.PlanCache.Hits)
	}
}

// TestServerQueryErrors: syntax errors return 400 with position and a
// caret-annotated source line; unknown relations and empty queries are 400.
func TestServerQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := post(t, ts.URL+"/v1/query", queryRequest{}, nil); code != http.StatusBadRequest {
		t.Fatalf("empty query: status %d, want 400", code)
	}

	var qerr queryError
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{Query: "ans(K, V) :- r(K, V), K @ 5"}, &qerr); code != http.StatusBadRequest {
		t.Fatalf("syntax error: status %d, want 400", code)
	}
	if qerr.Line != 1 || qerr.Col != 25 {
		t.Fatalf("error position = %d:%d, want 1:25 (%s)", qerr.Line, qerr.Col, qerr.Error)
	}
	if !bytes.Contains([]byte(qerr.Annotate), []byte("^")) {
		t.Fatalf("annotation missing caret: %q", qerr.Annotate)
	}

	// Unknown relation: positioned at the atom.
	qerr = queryError{}
	if code := post(t, ts.URL+"/v1/query",
		queryRequest{Query: "ans(K, V) :- ghost(K, V)"}, &qerr); code != http.StatusBadRequest {
		t.Fatalf("unknown relation: status %d, want 400", code)
	}
	if !bytes.Contains([]byte(qerr.Error), []byte("ghost")) || qerr.Line != 1 {
		t.Fatalf("unknown-relation error = %+v", qerr)
	}
}
