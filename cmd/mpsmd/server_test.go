package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	mpsm "repro"
	"repro/internal/mergejoin"
)

// newTestServer spins up the handler over a default service; the caller gets
// the httptest server and the underlying mpsm.Service for stats assertions.
func newTestServer(t *testing.T) (*httptest.Server, *mpsm.Service) {
	t.Helper()
	svc := mpsm.NewService(mpsm.New(mpsm.WithWorkers(2), mpsm.WithAutoPlan(true)))
	ts := httptest.NewServer(newServer(svc))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts, svc
}

// post sends a JSON body and decodes the JSON response into out (if non-nil),
// returning the status code.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestServerJoinEndToEnd(t *testing.T) {
	ts, svc := newTestServer(t)

	// Register R and S through the API; generation is seed-deterministic, so
	// the oracle can be computed on an identical local copy.
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 2000, Seed: 7}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Generate: &generateSpec{Size: 8000, Seed: 8, ForeignKeyOf: "R"}}, nil); code != http.StatusCreated {
		t.Fatalf("create S: status %d", code)
	}
	r := mpsm.GenerateUniform("R", 2000, 7)
	s := mpsm.GenerateForeignKey("S", r, 8000, 8)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	var res joinResponse
	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "R", S: "S", Label: "http"}, &res); code != http.StatusOK {
		t.Fatalf("join: status %d", code)
	}
	if res.Matches != want.Count || res.MaxSum != want.Max {
		t.Fatalf("join over HTTP = %d/%d, want %d/%d", res.Matches, res.MaxSum, want.Count, want.Max)
	}

	// The repeated join hits the plan cache; /v1/stats reports it.
	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "R", S: "S"}, &res); code != http.StatusOK {
		t.Fatalf("repeat join: status %d", code)
	}
	var stats mpsm.ServiceStats
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Admitted != 2 || stats.PlanCache.Hits != 1 {
		t.Fatalf("stats after two joins = admitted %d, cache hits %d; want 2 and 1",
			stats.Admission.Admitted, stats.PlanCache.Hits)
	}
	if svc.Stats().Memory.ReservedBytes != 0 {
		t.Fatal("reservations leaked after HTTP joins")
	}
}

func TestServerExplicitTuplesAndAlgorithm(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Tuples: [][2]uint64{{1, 10}, {2, 20}, {3, 30}}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Tuples: [][2]uint64{{2, 5}, {2, 7}, {9, 1}}}, nil); code != http.StatusCreated {
		t.Fatalf("create S: status %d", code)
	}
	var res joinResponse
	if code := post(t, ts.URL+"/v1/join",
		joinRequest{R: "R", S: "S", Algorithm: "wisconsin", Workers: 2}, &res); code != http.StatusOK {
		t.Fatalf("join: status %d", code)
	}
	// Key 2 matches twice: payload sums 25 and 27.
	if res.Matches != 2 || res.MaxSum != 27 {
		t.Fatalf("join = %d/%d, want 2/27", res.Matches, res.MaxSum)
	}
	// The pinned algorithm is honored even though the service auto-plans.
	if res.Algorithm != "Wisconsin" {
		t.Fatalf("algorithm = %q, want the pinned Wisconsin", res.Algorithm)
	}
}

func TestServerErrors(t *testing.T) {
	ts, _ := newTestServer(t)

	if code := post(t, ts.URL+"/v1/join", joinRequest{R: "nope", S: "nada"}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown relation: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 100, Seed: 1}}, nil); code != http.StatusCreated {
		t.Fatalf("create R: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "bad"}, nil); code != http.StatusBadRequest {
		t.Fatalf("neither tuples nor generate: status %d, want 400", code)
	}
	if code := post(t, ts.URL+"/v1/relations",
		createRelationRequest{Name: "S", Generate: &generateSpec{Size: 100, Seed: 2, ForeignKeyOf: "ghost"}}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown parent: status %d, want 404", code)
	}
	if code := post(t, ts.URL+"/v1/join",
		joinRequest{R: "R", S: "R", Algorithm: "bogosort"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad algorithm: status %d, want 400", code)
	}
	// An admission budget that can never fit maps to 413.
	engine := mpsm.New()
	small := mpsm.NewService(engine, mpsm.WithMaxMemory(1<<20))
	defer small.Close()
	ts2 := httptest.NewServer(newServer(small))
	defer ts2.Close()
	if code := post(t, ts2.URL+"/v1/relations",
		createRelationRequest{Name: "R", Generate: &generateSpec{Size: 100, Seed: 1}}, nil); code != http.StatusCreated {
		t.Fatal("create R on small service failed")
	}
	if code := post(t, ts2.URL+"/v1/join",
		joinRequest{R: "R", S: "R", BudgetBytes: 2 << 20}, nil); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized budget: status %d, want 413", code)
	}
}
