package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	mpsm "repro"
)

// server is the HTTP front-end over one mpsm.Service: a named-relation catalog
// plus join submission. All state mutations go through the catalog mutex; the
// service itself is concurrency-safe by construction.
type server struct {
	svc *mpsm.Service
	mux *http.ServeMux

	mu        sync.RWMutex
	relations map[string]*mpsm.Relation
}

// newServer wires the routes. The returned server is an http.Handler, so tests
// drive it through net/http/httptest without binding a port.
func newServer(svc *mpsm.Service) *server {
	s := &server{
		svc:       svc,
		mux:       http.NewServeMux(),
		relations: make(map[string]*mpsm.Relation),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/relations", s.handleListRelations)
	s.mux.HandleFunc("POST /v1/relations", s.handleCreateRelation)
	s.mux.HandleFunc("POST /v1/join", s.handleJoin)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	return s
}

// catalog snapshots the relation map as an mpsm.Catalog for query
// compilation. Compile resolves names eagerly, so the snapshot only needs to
// be stable for the duration of the lookup.
func (s *server) catalog() mpsm.Catalog {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cat := make(mpsm.MapCatalog, len(s.relations))
	for name, rel := range s.relations {
		cat[name] = rel
	}
	return cat
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// writeJSON writes v with the given status; encoding errors at this point can
// only be half-written responses, so they are ignored.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

// relationInfo summarizes one catalog entry.
type relationInfo struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
}

func (s *server) handleListRelations(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	infos := make([]relationInfo, 0, len(s.relations))
	for name, rel := range s.relations {
		infos = append(infos, relationInfo{Name: name, Rows: rel.Len()})
	}
	s.mu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, infos)
}

// generateSpec asks the server to synthesize a relation: uniform keys by
// default, or foreign keys drawn from an existing relation.
type generateSpec struct {
	Size int    `json:"size"`
	Seed uint64 `json:"seed"`
	// ForeignKeyOf names an existing relation to sample keys from,
	// guaranteeing join partners.
	ForeignKeyOf string `json:"foreign_key_of,omitempty"`
}

// createRelationRequest registers a named relation, either from explicit
// tuples ([[key, payload], ...]) or from a generator spec.
type createRelationRequest struct {
	Name     string        `json:"name"`
	Tuples   [][2]uint64   `json:"tuples,omitempty"`
	Generate *generateSpec `json:"generate,omitempty"`
}

func (s *server) handleCreateRelation(w http.ResponseWriter, r *http.Request) {
	var req createRelationRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "relation name is required")
		return
	}
	if (req.Tuples == nil) == (req.Generate == nil) {
		writeError(w, http.StatusBadRequest, "provide exactly one of tuples or generate")
		return
	}

	var rel *mpsm.Relation
	switch {
	case req.Tuples != nil:
		tuples := make([]mpsm.Tuple, len(req.Tuples))
		for i, t := range req.Tuples {
			tuples[i] = mpsm.Tuple{Key: t[0], Payload: t[1]}
		}
		rel = &mpsm.Relation{Name: req.Name, Tuples: tuples}
	case req.Generate.Size <= 0:
		writeError(w, http.StatusBadRequest, "generate.size must be positive")
		return
	case req.Generate.ForeignKeyOf != "":
		s.mu.RLock()
		parent, ok := s.relations[req.Generate.ForeignKeyOf]
		s.mu.RUnlock()
		if !ok {
			writeError(w, http.StatusNotFound, "unknown parent relation %q", req.Generate.ForeignKeyOf)
			return
		}
		rel = mpsm.GenerateForeignKey(req.Name, parent, req.Generate.Size, req.Generate.Seed)
	default:
		rel = mpsm.GenerateUniform(req.Name, req.Generate.Size, req.Generate.Seed)
	}

	s.mu.Lock()
	s.relations[req.Name] = rel
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, relationInfo{Name: req.Name, Rows: rel.Len()})
}

// joinRequest submits R ⋈ S through the serving layer. R is the private
// (smaller, partitioned) input, S the public one.
type joinRequest struct {
	R string `json:"r"`
	S string `json:"s"`
	// Algorithm optionally pins the join algorithm (pmpsm, bmpsm, dmpsm,
	// wisconsin, radix); empty defers to the engine (and, under auto-plan,
	// the cost-based planner via the plan cache).
	Algorithm string `json:"algorithm,omitempty"`
	// Workers optionally pins the degree of parallelism; 0 lets the service
	// choose elastically from the fair-share slots.
	Workers int `json:"workers,omitempty"`
	// Weight is the fair-share weight (default 1).
	Weight int `json:"weight,omitempty"`
	// BudgetBytes is the declared admission budget; 0 derives it from the
	// input sizes.
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Label names the query in the stats attribution.
	Label string `json:"label,omitempty"`
}

// joinResponse is the evaluation-query result plus timing.
type joinResponse struct {
	Matches     uint64  `json:"matches"`
	MaxSum      uint64  `json:"max_sum"`
	Algorithm   string  `json:"algorithm"`
	Workers     int     `json:"workers"`
	TotalMillis float64 `json:"total_millis"`
}

func (s *server) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	s.mu.RLock()
	rRel, rOK := s.relations[req.R]
	sRel, sOK := s.relations[req.S]
	s.mu.RUnlock()
	if !rOK {
		writeError(w, http.StatusNotFound, "unknown relation %q", req.R)
		return
	}
	if !sOK {
		writeError(w, http.StatusNotFound, "unknown relation %q", req.S)
		return
	}

	var qopts []mpsm.QueryOption
	var eopts []mpsm.Option
	if req.Algorithm != "" {
		alg, err := mpsm.ParseAlgorithm(req.Algorithm)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// A pinned algorithm turns auto-planning off for this query;
		// otherwise the planner would be free to override the pin.
		eopts = append(eopts, mpsm.WithAlgorithm(alg), mpsm.WithAutoPlan(false))
	}
	if req.Workers > 0 {
		eopts = append(eopts, mpsm.WithWorkers(req.Workers))
	}
	if len(eopts) > 0 {
		qopts = append(qopts, mpsm.WithQueryOptions(eopts...))
	}
	if req.Weight > 0 {
		qopts = append(qopts, mpsm.WithQueryWeight(req.Weight))
	}
	if req.BudgetBytes > 0 {
		qopts = append(qopts, mpsm.WithQueryBudget(req.BudgetBytes))
	}
	if req.Label != "" {
		qopts = append(qopts, mpsm.WithQueryLabel(req.Label))
	}

	start := time.Now()
	res, err := s.svc.Join(r.Context(), rRel, sRel, qopts...)
	if err != nil {
		status := joinErrorStatus(err)
		if status == http.StatusTooManyRequests {
			// The service already walked its degradation ladder; tell the
			// client when to come back.
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, joinResponse{
		Matches:     res.Matches,
		MaxSum:      res.MaxSum,
		Algorithm:   res.Algorithm,
		Workers:     res.Workers,
		TotalMillis: float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

// queryRequest submits a Datalog-style query over the named catalog
// relations; see the mpsm.Compile documentation for the language.
type queryRequest struct {
	// Query is the rule text, e.g.
	// "ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y)".
	Query string `json:"query"`
	// Limit bounds the number of tuples returned (0 = all).
	Limit int `json:"limit,omitempty"`
	// Explain additionally renders the physical plan.
	Explain bool `json:"explain,omitempty"`
	// Weight, BudgetBytes and Label behave as in joinRequest.
	Weight      int    `json:"weight,omitempty"`
	BudgetBytes int64  `json:"budget_bytes,omitempty"`
	Label       string `json:"label,omitempty"`
}

// queryError is the error body for failed compilations: the message plus,
// for positioned errors, the 1-based line/column and a caret-annotated
// rendering of the offending source line.
type queryError struct {
	Error    string `json:"error"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Annotate string `json:"annotate,omitempty"`
}

// queryResponse carries the canonical query text, the result tuples (bounded
// by Limit) and timing.
type queryResponse struct {
	Query       string       `json:"query"`
	Columns     [2]string    `json:"columns"`
	Rows        int          `json:"rows"`
	Tuples      []mpsm.Tuple `json:"tuples"`
	Truncated   bool         `json:"truncated,omitempty"`
	Plan        string       `json:"plan,omitempty"`
	TotalMillis float64      `json:"total_millis"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, "query is required")
		return
	}

	plan, err := mpsm.Compile(req.Query, s.catalog())
	if err != nil {
		var qe *mpsm.QueryError
		if errors.As(err, &qe) {
			writeJSON(w, http.StatusBadRequest, queryError{
				Error:    qe.Error(),
				Line:     qe.Pos.Line,
				Col:      qe.Pos.Col,
				Annotate: qe.Annotate(),
			})
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var qopts []mpsm.QueryOption
	if req.Weight > 0 {
		qopts = append(qopts, mpsm.WithQueryWeight(req.Weight))
	}
	if req.BudgetBytes > 0 {
		qopts = append(qopts, mpsm.WithQueryBudget(req.BudgetBytes))
	}
	if req.Label != "" {
		qopts = append(qopts, mpsm.WithQueryLabel(req.Label))
	}

	resp := queryResponse{Query: plan.QueryInfo().Text, Columns: plan.QueryInfo().Columns}
	if req.Explain {
		ex, err := s.svc.Explain(plan, qopts...)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		resp.Plan = ex.String()
	}

	start := time.Now()
	res, err := s.svc.RunPlan(r.Context(), plan, qopts...)
	if err != nil {
		status := joinErrorStatus(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, "%v", err)
		return
	}
	resp.Rows = res.Output.Len()
	resp.Tuples = res.Output.Tuples
	if req.Limit > 0 && len(resp.Tuples) > req.Limit {
		resp.Tuples = resp.Tuples[:req.Limit]
		resp.Truncated = true
	}
	resp.TotalMillis = float64(time.Since(start).Microseconds()) / 1000.0
	writeJSON(w, http.StatusOK, resp)
}

// joinErrorStatus maps serving-layer errors to HTTP statuses: admission
// back-pressure is 429 (retryable), an impossible budget is 413, a closed
// service is 503, anything else a plain 500.
func joinErrorStatus(err error) int {
	switch {
	case errors.Is(err, mpsm.ErrQueueFull), errors.Is(err, mpsm.ErrQueueTimeout):
		return http.StatusTooManyRequests
	case errors.Is(err, mpsm.ErrBudgetTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, mpsm.ErrServiceClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}
