// Command mpsmbench runs the experiments that regenerate the figures of the
// MPSM paper's evaluation section and prints their reports.
//
// Usage:
//
//	mpsmbench -list
//	mpsmbench -experiment figure12 -scale 0.1 -workers 8
//	mpsmbench -all -scale 0.05
//	mpsmbench -json BENCH_$(date +%Y%m%d).json -scale 0.1
//	mpsmbench -experiment sort -json BENCH_sort.json
//	mpsmbench -all -json . -scale 0.25
//	mpsmbench -experiment columnar -cpuprofile cpu.prof
//
// The scale factor multiplies the base dataset size (|R| = 262144 tuples at
// scale 1.0). The paper's 1600M-tuple datasets correspond to a scale of
// roughly 6400 and require hundreds of GB of RAM.
//
// -all -json DIR writes every machine-readable report as BENCH_<name>.json
// into DIR — the wrapper the CI bench job and the committed perf trajectory
// at the repository root use.
//
// -cpuprofile/-memprofile write pprof profiles of whatever the invocation
// runs, so kernels are profileable without code edits:
//
//	mpsmbench -experiment columnar -cpuprofile cpu.prof
//	go tool pprof -top cpu.prof
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	os.Exit(run())
}

// run carries main's body so profile writers flush on every exit path
// (os.Exit would skip the deferred stops).
func run() int {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		all        = flag.Bool("all", false, "run every experiment")
		experiment = flag.String("experiment", "", "name of the experiment to run (see -list)")
		scale      = flag.Float64("scale", 0, "dataset scale factor (default from MPSM_SCALE or 1.0)")
		workers    = flag.Int("workers", 0, "maximum worker count (default from MPSM_WORKERS or GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "add explanatory notes to the output")
		jsonPath   = flag.String("json", "", "write a machine-readable report to this file (\"-\" for stdout); alone it emits the per-algorithm timing report, with -experiment that experiment's report, with -all every report as BENCH_<name>.json into this directory")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile taken after the run to this file")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Verbose = *verbose

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained allocations
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			}
		}()
	}

	switch {
	case *jsonPath != "" && *all:
		// Every experiment with a machine-readable form, one BENCH_<name>.json
		// per experiment, plus the per-algorithm timing report as
		// BENCH_report.json.
		if *jsonPath == "-" {
			fmt.Fprintln(os.Stderr, "mpsmbench: -all -json needs a directory, not -")
			return 2
		}
		if err := writeAllReports(cfg, *jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			return 1
		}
	case *jsonPath != "":
		// -json alone emits the per-algorithm timing report; -json together
		// with -experiment emits that experiment's machine-readable report.
		if *list {
			fmt.Fprintln(os.Stderr, "mpsmbench: -json cannot be combined with -list")
			return 2
		}
		var rep any
		if *experiment != "" {
			e, ok := bench.Lookup(*experiment)
			if !ok {
				fmt.Fprintf(os.Stderr, "mpsmbench: unknown experiment %q (use -list)\n", *experiment)
				return 1
			}
			if e.JSON == nil {
				fmt.Fprintf(os.Stderr, "mpsmbench: experiment %q has no machine-readable report\n", *experiment)
				return 2
			}
			r, err := e.JSON(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				return 1
			}
			rep = r
		} else {
			r, err := bench.RunReport(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				return 1
			}
			rep = r
		}
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				return 1
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteAnyJSON(out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			return 1
		}
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.Name, e.Title)
		}
	case *all:
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			return 1
		}
	case *experiment != "":
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "mpsmbench: unknown experiment %q (use -list)\n", *experiment)
			return 1
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			return 1
		}
	default:
		flag.Usage()
		return 2
	}
	return 0
}

// writeAllReports regenerates the full perf trajectory: BENCH_<name>.json for
// every experiment that has a JSON form and BENCH_report.json for the
// per-algorithm timing report, all in dir.
func writeAllReports(cfg bench.Config, dir string) error {
	writeOne := func(name string, rep any) error {
		path := filepath.Join(dir, "BENCH_"+name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := bench.WriteAnyJSON(f, rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	for _, e := range bench.Experiments() {
		if e.JSON == nil {
			continue
		}
		rep, err := e.JSON(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if err := writeOne(e.Name, rep); err != nil {
			return err
		}
	}
	rep, err := bench.RunReport(cfg)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return writeOne("report", rep)
}
