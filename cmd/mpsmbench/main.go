// Command mpsmbench runs the experiments that regenerate the figures of the
// MPSM paper's evaluation section and prints their reports.
//
// Usage:
//
//	mpsmbench -list
//	mpsmbench -experiment figure12 -scale 0.1 -workers 8
//	mpsmbench -all -scale 0.05
//	mpsmbench -json BENCH_$(date +%Y%m%d).json -scale 0.1
//	mpsmbench -experiment sort -json BENCH_sort.json
//	mpsmbench -experiment steadystate -json BENCH_steadystate.json
//
// The scale factor multiplies the base dataset size (|R| = 262144 tuples at
// scale 1.0). The paper's 1600M-tuple datasets correspond to a scale of
// roughly 6400 and require hundreds of GB of RAM.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		all        = flag.Bool("all", false, "run every experiment")
		experiment = flag.String("experiment", "", "name of the experiment to run (see -list)")
		scale      = flag.Float64("scale", 0, "dataset scale factor (default from MPSM_SCALE or 1.0)")
		workers    = flag.Int("workers", 0, "maximum worker count (default from MPSM_WORKERS or GOMAXPROCS)")
		verbose    = flag.Bool("v", false, "add explanatory notes to the output")
		jsonPath   = flag.String("json", "", "write a machine-readable report to this file (\"-\" for stdout); alone it emits the per-algorithm timing report, with -experiment it emits that experiment's JSON report")
	)
	flag.Parse()

	cfg := bench.DefaultConfig()
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	cfg.Verbose = *verbose

	switch {
	case *jsonPath != "":
		// -json alone emits the per-algorithm timing report; -json together
		// with -experiment emits that experiment's machine-readable report.
		// -list and -all have no JSON form.
		if *list || *all {
			fmt.Fprintln(os.Stderr, "mpsmbench: -json cannot be combined with -list or -all")
			os.Exit(2)
		}
		var rep any
		if *experiment != "" {
			e, ok := bench.Lookup(*experiment)
			if !ok {
				fmt.Fprintf(os.Stderr, "mpsmbench: unknown experiment %q (use -list)\n", *experiment)
				os.Exit(1)
			}
			if e.JSON == nil {
				fmt.Fprintf(os.Stderr, "mpsmbench: experiment %q has no machine-readable report\n", *experiment)
				os.Exit(2)
			}
			r, err := e.JSON(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				os.Exit(1)
			}
			rep = r
		} else {
			r, err := bench.RunReport(cfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				os.Exit(1)
			}
			rep = r
		}
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mpsmbench:", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteAnyJSON(out, rep); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			os.Exit(1)
		}
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-22s %s\n", e.Name, e.Title)
		}
	case *all:
		if err := bench.RunAll(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			os.Exit(1)
		}
	case *experiment != "":
		e, ok := bench.Lookup(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "mpsmbench: unknown experiment %q (use -list)\n", *experiment)
			os.Exit(1)
		}
		fmt.Printf("=== %s: %s ===\n", e.Name, e.Title)
		if err := e.Run(cfg, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmbench:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
