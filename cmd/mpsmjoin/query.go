package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	mpsm "repro"
)

// queryCatalog builds the relations a -query / -repl session can reference:
// the generated (or file-loaded) inputs as r and s, plus a third foreign-key
// relation t drawn from r for three-way joins.
func queryCatalog(r, s *mpsm.Relation, seed uint64) mpsm.MapCatalog {
	return mpsm.MapCatalog{
		"r": r,
		"s": s,
		"t": mpsm.GenerateForeignKey("t", r, r.Len(), seed+2),
	}
}

// runQuery compiles and executes one query, printing the result (or, with
// explainOnly, just the physical plan). Compilation errors print with a
// caret under the offending token and exit non-zero.
func runQuery(ctx context.Context, engine *mpsm.Engine, cat mpsm.MapCatalog, src string, jsonOut, explainPlan bool, opts []mpsm.Option) {
	p, err := mpsm.Compile(src, cat)
	if err != nil {
		printQueryError(err)
		os.Exit(1)
	}
	if explainPlan && !jsonOut {
		ex, err := engine.Explain(p, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		fmt.Printf("physical plan:\n%s\n\n", ex)
	}
	start := time.Now()
	res, err := engine.RunPlan(ctx, p, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(1)
	}
	if jsonOut {
		printQueryJSON(p, res, time.Since(start))
		return
	}
	printQueryResult(p, res, time.Since(start), 10)
}

// printQueryError renders a compilation error; *QueryError values carry a
// source position and render with the offending line and a caret.
func printQueryError(err error) {
	var qe *mpsm.QueryError
	if errors.As(err, &qe) {
		fmt.Fprintln(os.Stderr, "mpsmjoin: "+qe.Annotate())
		return
	}
	fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
}

// printQueryResult renders the canonical query, a bounded sample of the
// output and the timing.
func printQueryResult(p *mpsm.Plan, res *mpsm.PlanResult, elapsed time.Duration, limit int) {
	info := p.QueryInfo()
	fmt.Printf("query:           %s\n", info.Text)
	fmt.Printf("total time:      %s (scan %s)\n", elapsed.Round(time.Microsecond), res.ScanTime.Round(time.Microsecond))
	for i, j := range res.Joins {
		fmt.Printf("join %d:          %s, %d matches, %s\n",
			i+1, j.Result.Algorithm, j.Result.Matches, j.Result.Total.Round(time.Microsecond))
	}
	n := res.Output.Len()
	fmt.Printf("rows:            %d\n", n)
	shown := n
	if shown > limit {
		shown = limit
	}
	if shown > 0 {
		fmt.Printf("%16s  %s\n", info.Columns[0], info.Columns[1])
		for _, tu := range res.Output.Tuples[:shown] {
			fmt.Printf("%16d  %d\n", tu.Key, tu.Payload)
		}
		if n > shown {
			fmt.Printf("... %d more rows\n", n-shown)
		}
	}
}

// printQueryJSON renders the full result as machine-readable JSON.
func printQueryJSON(p *mpsm.Plan, res *mpsm.PlanResult, elapsed time.Duration) {
	info := p.QueryInfo()
	out := struct {
		Query       string       `json:"query"`
		Columns     [2]string    `json:"columns"`
		Rows        int          `json:"rows"`
		TotalMillis float64      `json:"total_millis"`
		Tuples      []mpsm.Tuple `json:"tuples"`
	}{
		Query:       info.Text,
		Columns:     info.Columns,
		Rows:        res.Output.Len(),
		TotalMillis: float64(elapsed.Microseconds()) / 1000.0,
		Tuples:      res.Output.Tuples,
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(1)
	}
}

// runREPL reads queries from stdin, one rule per line (a trailing '.' is
// optional), and prints each result. Errors annotate and continue; the
// session ends at EOF or \q.
func runREPL(ctx context.Context, engine *mpsm.Engine, cat mpsm.MapCatalog, explainPlan bool, opts []mpsm.Option) {
	fmt.Println("mpsm query REPL — relations: r, s, t; \\q quits, \\e toggles explain.")
	fmt.Println(`example: ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).`)
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for {
		fmt.Print("mpsm> ")
		if !in.Scan() {
			break
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\e`:
			explainPlan = !explainPlan
			fmt.Printf("explain %v\n", explainPlan)
			continue
		}
		p, err := mpsm.Compile(line, cat)
		if err != nil {
			printQueryError(err)
			continue
		}
		if explainPlan {
			if ex, err := engine.Explain(p, opts...); err == nil {
				fmt.Printf("%s\n", ex)
			}
		}
		start := time.Now()
		res, err := engine.RunPlan(ctx, p, opts...)
		if err != nil {
			if ctx.Err() != nil {
				fmt.Fprintln(os.Stderr, "mpsmjoin:", ctx.Err())
				return
			}
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			continue
		}
		printQueryResult(p, res, time.Since(start), 10)
	}
	if err := in.Err(); err != nil && err != io.EOF {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
	}
}
