package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	mpsm "repro"
)

// runConcurrent is the serving-path smoke test behind -concurrency: it wraps
// the engine in an mpsm.Service and replays the same join from n closed-loop
// client goroutines, repeat queries each, then prints a latency histogram with
// quantiles and the serving counters (plan-cache hit rate, admission totals).
func runConcurrent(ctx context.Context, engine *mpsm.Engine, r, s *mpsm.Relation, n, repeat int, opts []mpsm.Option) {
	if repeat < 1 {
		repeat = 1
	}
	svc := mpsm.NewService(engine)
	defer svc.Close()

	fmt.Printf("replaying the join from %d clients, %d queries each, through one service\n\n", n, repeat)

	latencies := make([][]time.Duration, n)
	errs := make([]error, n)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			label := fmt.Sprintf("client%02d", c)
			for i := 0; i < repeat; i++ {
				qStart := time.Now()
				_, err := svc.Join(ctx, r, s,
					mpsm.WithQueryLabel(label), mpsm.WithQueryOptions(opts...))
				if err != nil {
					errs[c] = err
					return
				}
				latencies[c] = append(latencies[c], time.Since(qStart))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for c, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "mpsmjoin: client %d: %v\n", c, err)
			os.Exit(1)
		}
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	quantile := func(q float64) time.Duration {
		return all[int(q*float64(len(all)-1))]
	}

	printHistogram(all)

	fmt.Printf("\nqueries:         %d in %s (%.0f qps)\n",
		len(all), elapsed.Round(time.Millisecond), float64(len(all))/elapsed.Seconds())
	fmt.Printf("latency:         p50 %s  p95 %s  p99 %s  max %s\n",
		quantile(0.50).Round(time.Microsecond), quantile(0.95).Round(time.Microsecond),
		quantile(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))

	st := svc.Stats()
	if total := st.PlanCache.Hits + st.PlanCache.Misses; total > 0 {
		fmt.Printf("plan cache:      %.0f%% hit rate (%d hits / %d lookups)\n",
			100*float64(st.PlanCache.Hits)/float64(total), st.PlanCache.Hits, total)
	}
	fmt.Printf("admission:       %d admitted, %d queued, %d rejected\n",
		st.Admission.Admitted, st.Admission.Queued, st.Admission.Rejected)
}

// printHistogram renders the latency distribution in power-of-two buckets.
func printHistogram(sorted []time.Duration) {
	// Bucket i covers [2^i, 2^(i+1)) microseconds; find the populated range.
	bucketOf := func(d time.Duration) int {
		us := d.Microseconds()
		b := 0
		for us >= 2 {
			us >>= 1
			b++
		}
		return b
	}
	lo, hi := bucketOf(sorted[0]), bucketOf(sorted[len(sorted)-1])
	counts := make([]int, hi-lo+1)
	maxCount := 0
	for _, d := range sorted {
		b := bucketOf(d) - lo
		counts[b]++
		if counts[b] > maxCount {
			maxCount = counts[b]
		}
	}
	const barWidth = 50
	for i, c := range counts {
		from := time.Duration(1<<(lo+i)) * time.Microsecond
		to := time.Duration(1<<(lo+i+1)) * time.Microsecond
		bar := strings.Repeat("#", c*barWidth/maxCount)
		fmt.Printf("%10s – %-10s %6d  %s\n", from, to, c, bar)
	}
}
