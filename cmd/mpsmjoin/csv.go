package main

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	mpsm "repro"
)

// keySpec is the parsed form of the -key flag: the schema plus, per column,
// the input-file column name it binds to.
type keySpec struct {
	names  []string
	schema *mpsm.Schema
}

// parseKeySpec parses a -key flag value. The grammar is a comma-separated
// list of column specs, each
//
//	name:type[:desc][:nullable][:nullslast]
//
// where type is one of int64 (int), uint64 (uint), float64 (float) and
// bytes (string). Examples:
//
//	-key "customer_id:int64"
//	-key "region:string,signup:int64:desc"
//	-key "name:bytes:nullable:nullslast"
func parseKeySpec(spec string) (*keySpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty -key spec")
	}
	ks := &keySpec{}
	var cols []mpsm.SchemaColumn
	for _, field := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(field), ":")
		if len(parts) < 2 {
			return nil, fmt.Errorf("key column %q: want name:type[:modifiers]", field)
		}
		col := mpsm.SchemaColumn{Name: parts[0]}
		switch parts[1] {
		case "int64", "int":
			col.Type = mpsm.ColumnInt64
		case "uint64", "uint":
			col.Type = mpsm.ColumnUint64
		case "float64", "float":
			col.Type = mpsm.ColumnFloat64
		case "bytes", "string":
			col.Type = mpsm.ColumnBytes
		default:
			return nil, fmt.Errorf("key column %q: unknown type %q", parts[0], parts[1])
		}
		for _, mod := range parts[2:] {
			switch mod {
			case "asc":
			case "desc":
				col.Desc = true
			case "nullable":
				col.Nullable = true
			case "nullslast":
				col.Nullable = true
				col.NullsLast = true
			default:
				return nil, fmt.Errorf("key column %q: unknown modifier %q", parts[0], mod)
			}
		}
		ks.names = append(ks.names, col.Name)
		cols = append(cols, col)
	}
	schema, err := mpsm.NewSchema(cols...)
	if err != nil {
		return nil, err
	}
	ks.schema = schema
	return ks, nil
}

// loadRelation reads a delimited file into a relation keyed under the spec's
// schema. The first row must be a header; key (and payload) columns are bound
// by name. The delimiter comes from -sep, defaulting to tab for .tsv files
// and comma otherwise. Empty cells are null for nullable columns and the
// empty string for bytes columns; payloadCol selects an unsigned integer
// payload column (row index when empty).
func loadRelation(name, path, sep string, ks *keySpec, payloadCol string) (*mpsm.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	r := csv.NewReader(f)
	r.ReuseRecord = true
	switch {
	case sep != "":
		r.Comma = rune(sep[0])
	case strings.EqualFold(filepath.Ext(path), ".tsv"):
		r.Comma = '\t'
	}

	header, err := r.Read()
	if err != nil {
		return nil, fmt.Errorf("%s: reading header: %w", path, err)
	}
	keyIdx := make([]int, len(ks.names))
	for i, want := range ks.names {
		keyIdx[i] = -1
		for j, h := range header {
			if strings.TrimSpace(h) == want {
				keyIdx[i] = j
				break
			}
		}
		if keyIdx[i] < 0 {
			return nil, fmt.Errorf("%s: key column %q not in header %v", path, want, header)
		}
	}
	payIdx := -1
	if payloadCol != "" {
		for j, h := range header {
			if strings.TrimSpace(h) == payloadCol {
				payIdx = j
				break
			}
		}
		if payIdx < 0 {
			return nil, fmt.Errorf("%s: payload column %q not in header %v", path, payloadCol, header)
		}
	}

	cols := ks.schema.Columns()
	var rows [][]mpsm.KeyValue
	var payloads []uint64
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		row := make([]mpsm.KeyValue, len(keyIdx))
		for i, j := range keyIdx {
			if j >= len(rec) {
				return nil, fmt.Errorf("%s:%d: row has %d fields, key column %q is #%d", path, line, len(rec), ks.names[i], j+1)
			}
			v, err := parseKeyValue(rec[j], cols[i])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: column %q: %w", path, line, ks.names[i], err)
			}
			row[i] = v
		}
		pay := uint64(len(rows))
		if payIdx >= 0 {
			if payIdx >= len(rec) {
				return nil, fmt.Errorf("%s:%d: row has %d fields, payload column is #%d", path, line, len(rec), payIdx+1)
			}
			pay, err = strconv.ParseUint(strings.TrimSpace(rec[payIdx]), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: payload: %w", path, line, err)
			}
		}
		rows = append(rows, row)
		payloads = append(payloads, pay)
	}
	return ks.schema.Encode(name, rows, payloads)
}

// parseKeyValue converts one cell under its schema column.
func parseKeyValue(cell string, col mpsm.SchemaColumn) (mpsm.KeyValue, error) {
	if cell == "" && col.Nullable {
		return mpsm.NullKey(), nil
	}
	switch col.Type {
	case mpsm.ColumnInt64:
		v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return mpsm.KeyValue{}, err
		}
		return mpsm.Int64Key(v), nil
	case mpsm.ColumnUint64:
		v, err := strconv.ParseUint(strings.TrimSpace(cell), 10, 64)
		if err != nil {
			return mpsm.KeyValue{}, err
		}
		return mpsm.Uint64Key(v), nil
	case mpsm.ColumnFloat64:
		v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
		if err != nil {
			return mpsm.KeyValue{}, err
		}
		return mpsm.Float64Key(v), nil
	default:
		return mpsm.StringKey(cell), nil
	}
}

// loadFileInputs loads both join inputs for file mode.
func loadFileInputs(rPath, sPath, sep, spec, payloadCol string) (*mpsm.Relation, *mpsm.Relation, error) {
	if rPath == "" || sPath == "" {
		return nil, nil, fmt.Errorf("file mode needs both -r-file and -s-file")
	}
	ks, err := parseKeySpec(spec)
	if err != nil {
		return nil, nil, fmt.Errorf("-key: %w", err)
	}
	r, err := loadRelation("R", rPath, sep, ks, payloadCol)
	if err != nil {
		return nil, nil, err
	}
	s, err := loadRelation("S", sPath, sep, ks, payloadCol)
	if err != nil {
		return nil, nil, err
	}
	return r, s, nil
}
