// Command mpsmjoin runs a single equi-join on a generated dataset and prints
// the per-phase breakdown, the join cardinality and the evaluation-query
// result. It is the quickest way to compare the join algorithms on a given
// machine.
//
// The join runs through the reusable Engine API and honours Ctrl-C: an
// interrupt cancels the context and aborts the join mid-flight.
//
// Usage:
//
//	mpsmjoin -algorithm pmpsm -r 1000000 -multiplicity 4 -workers 8
//	mpsmjoin -algorithm wisconsin -r 500000 -multiplicity 8 -numa
//	mpsmjoin -algorithm dmpsm -r 200000 -page-budget 64
//
// With -plan the command instead runs a composable operator plan — the
// 3-way join (R ⋈ S) ⋈ T followed by a streaming GROUP BY SUM aggregation —
// demonstrating how key-ordered MPSM output lets joins and aggregations
// compose without re-sorting or hash tables:
//
//	mpsmjoin -plan -r 500000 -multiplicity 4 -pool
//
// With -auto the engine's cost-based planner picks the algorithm, join
// order, scheduling mode and presorted declarations from sampled statistics
// instead of the flags; -explain prints the chosen physical plan (with
// estimated cardinalities and the per-algorithm cost comparison) before
// running:
//
//	mpsmjoin -auto -explain -r 1000000 -multiplicity 4
//
// With -query the command compiles and runs a Datalog-style query over the
// generated (or file-loaded) inputs, bound as relations r and s plus a third
// foreign-key relation t; -repl starts an interactive loop instead.
// Compilation errors print the offending line with a caret and exit
// non-zero:
//
//	mpsmjoin -r 100000 -query 'ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y)'
//	mpsmjoin -repl -auto -explain
//
// With -r-file/-s-file the inputs come from CSV or TSV files (first row is
// the header) joined on typed key columns declared with -key, instead of
// being generated. String, composite, descending and nullable keys are
// normalized into the engine's uint64 key representation; -explain shows
// whether the join runs on the exact fast path or verifies full keys:
//
//	mpsmjoin -r-file orders.csv -s-file customers.csv -key "customer_id:int64"
//	mpsmjoin -r-file r.tsv -s-file s.tsv -key "region:string,id:int64:desc" -explain
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	mpsm "repro"
	"repro/internal/bench"
	"repro/internal/workload"
)

func main() {
	var (
		algorithmName = flag.String("algorithm", "pmpsm", "join algorithm: pmpsm, bmpsm, dmpsm, wisconsin, radix")
		rSize         = flag.Int("r", 1<<20, "cardinality of the private input R")
		multiplicity  = flag.Int("multiplicity", 4, "|S| = multiplicity × |R|")
		workers       = flag.Int("workers", 0, "degree of parallelism (default GOMAXPROCS)")
		rSkew         = flag.String("r-skew", "none", "key distribution of R: none, low, high")
		sSkew         = flag.String("s-skew", "none", "key distribution of S: none, low, high")
		foreignKey    = flag.Bool("fk", true, "draw S keys from R (guarantees join partners)")
		seed          = flag.Uint64("seed", 42, "dataset seed")
		trackNUMA     = flag.Bool("numa", false, "enable simulated NUMA access accounting")
		perWorker     = flag.Bool("per-worker", false, "print per-worker phase breakdowns")
		splitters     = flag.String("splitters", "equi-cost", "P-MPSM splitter strategy: equi-cost, equi-height, uniform")
		schedMode     = flag.String("sched", "static", "match-phase scheduling: static (paper-faithful barriers) or morsel (work stealing)")
		pageBudget    = flag.Int("page-budget", 0, "D-MPSM: buffer pool budget in pages (0 = unlimited)")
		pageSize      = flag.Int("page-size", 1024, "D-MPSM: tuples per page")
		readLatency   = flag.Duration("read-latency", 0, "D-MPSM: simulated per-page read latency")
		timeout       = flag.Duration("timeout", 0, "abort the join after this duration (0 = no limit)")
		jsonOut       = flag.Bool("json", false, "print the result as machine-readable JSON instead of text")
		usePool       = flag.Bool("pool", false, "enable the engine-wide scratch pool (allocation-free steady state)")
		poolLimit     = flag.Int64("pool-limit", 0, "scratch pool byte limit (0 = default 512 MiB); implies nothing without -pool")
		concurrency   = flag.Int("concurrency", 0, "replay the same join from N goroutines through one serving engine and print the latency histogram")
		repeat        = flag.Int("repeat", 10, "with -concurrency: queries per client goroutine")
		rFile         = flag.String("r-file", "", "load R from this CSV/TSV file instead of generating it (requires -s-file and -key)")
		sFile         = flag.String("s-file", "", "load S from this CSV/TSV file")
		keySpecFlag   = flag.String("key", "", "typed key columns for file inputs, e.g. \"region:string,id:int64:desc\" (types: int64, uint64, float64, bytes; modifiers: asc, desc, nullable, nullslast)")
		payloadCol    = flag.String("payload", "", "file column holding the uint64 tuple payload (default: row index)")
		sepFlag       = flag.String("sep", "", "field delimiter for file inputs (default: tab for .tsv, comma otherwise)")
		queryText     = flag.String("query", "", "compile and run a Datalog-style query over relations r, s, t instead of the flag-built join (see README \"Query language\")")
		replMode      = flag.Bool("repl", false, "interactive query loop over relations r, s, t (one rule per line)")
		planMode      = flag.Bool("plan", false, "run the 3-way operator plan demo (R ⋈ S) ⋈ T + GROUP BY SUM instead of a single join")
		autoPlan      = flag.Bool("auto", false, "let the cost-based planner pick algorithm, join order, scheduler and presorted declarations from sampled statistics")
		explainPlan   = flag.Bool("explain", false, "print the chosen physical plan (algorithm, order, scheduler, estimates) before running")
	)
	flag.Parse()

	algorithm, err := mpsm.ParseAlgorithm(*algorithmName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(2)
	}
	strategy, err := parseSplitters(*splitters)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(2)
	}
	scheduler, err := mpsm.ParseScheduler(*schedMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(2)
	}

	var r, s *mpsm.Relation
	if *rFile != "" || *sFile != "" {
		// File mode: typed key columns normalize into the engine's uint64
		// keys; single numeric columns join on the fast path, everything
		// else carries full keys for tie-break verification.
		loadStart := time.Now()
		r, s, err = loadFileInputs(*rFile, *sFile, *sepFlag, *keySpecFlag, *payloadCol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(2)
		}
		if !*jsonOut {
			fmt.Printf("loaded |R|=%d (%s) |S|=%d (%s) in %s\n",
				r.Len(), *rFile, s.Len(), *sFile, time.Since(loadStart).Round(time.Millisecond))
			if r.Meta != nil {
				fmt.Printf("keys: %s\n\n", r.Meta.Describe())
			}
		}
	} else {
		spec := workload.Spec{
			RSize:        *rSize,
			Multiplicity: *multiplicity,
			RSkew:        parseSkew(*rSkew),
			SSkew:        parseSkew(*sSkew),
			ForeignKey:   *foreignKey && parseSkew(*sSkew) == workload.SkewNone,
			Seed:         *seed,
		}
		if !*jsonOut {
			fmt.Printf("generating |R|=%d |S|=%d (%s / %s keys, foreign-key=%v, seed=%d)\n",
				spec.RSize, spec.RSize*spec.Multiplicity, spec.RSkew, spec.SSkew, spec.ForeignKey, spec.Seed)
		}
		genStart := time.Now()
		r, s, err = workload.Generate(spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("generated in %s\n\n", time.Since(genStart).Round(time.Millisecond))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	engine := mpsm.New(
		mpsm.WithAlgorithm(algorithm),
		mpsm.WithWorkers(*workers),
		mpsm.WithSplitters(strategy),
		mpsm.WithScheduler(scheduler),
		mpsm.WithScratchPool(*usePool),
		mpsm.WithPoolLimit(*poolLimit),
		mpsm.WithDisk(mpsm.DiskConfig{PageSize: *pageSize, PageBudget: *pageBudget, ReadLatency: *readLatency}),
		mpsm.WithAutoPlan(*autoPlan),
	)
	var opts []mpsm.Option
	if *trackNUMA {
		opts = append(opts, mpsm.WithNUMATracking())
	}
	if *perWorker {
		opts = append(opts, mpsm.WithPerWorkerStats())
	}

	if *queryText != "" || *replMode {
		cat := queryCatalog(r, s, *seed)
		if *queryText != "" {
			runQuery(ctx, engine, cat, *queryText, *jsonOut, *explainPlan, opts)
		} else {
			runREPL(ctx, engine, cat, *explainPlan, opts)
		}
		return
	}
	if *planMode {
		runPlanDemo(ctx, engine, r, s, *seed, scheduler, *jsonOut, *explainPlan, *autoPlan, opts)
		return
	}
	if *concurrency > 0 {
		runConcurrent(ctx, engine, r, s, *concurrency, *repeat, opts)
		return
	}

	// schedName labels the scheduling mode in the output; under -auto it is
	// the planner's choice rather than the -sched flag.
	schedName := scheduler.String()
	var explain *mpsm.Explain
	if *explainPlan || *autoPlan {
		// The single join is the one-join plan; Explain shows the physical
		// choices (under -auto, the optimizer's) before anything runs.
		p := mpsm.NewPlan()
		p.Sink(p.Join(p.Scan(r), p.Scan(s)), nil)
		ex, err := engine.Explain(p, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		if *explainPlan {
			explain = ex
			if !*jsonOut {
				fmt.Printf("physical plan:\n%s\n\n", ex)
			}
		}
		if *autoPlan {
			for _, n := range ex.Nodes {
				if n.Kind == "Join" && n.Scheduler != "" {
					schedName = n.Scheduler
				}
			}
		}
	}

	var res *mpsm.Result
	var diskStats *mpsm.DiskStats
	if algorithm == mpsm.DMPSM {
		res, diskStats, err = engine.JoinWithDiskStats(ctx, r, s, opts...)
	} else {
		res, err = engine.Join(ctx, r, s, opts...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(1)
	}

	if *jsonOut {
		// The JSON form carries everything the text form prints: the timing
		// record plus (when applicable) the scratch-pool and disk stats.
		out := struct {
			bench.AlgorithmTiming
			Scratch *mpsm.ScratchStats `json:"scratch,omitempty"`
			Pool    *mpsm.PoolStats    `json:"scratch_pool,omitempty"`
			Disk    *mpsm.DiskStats    `json:"disk,omitempty"`
			Explain *mpsm.Explain      `json:"explain,omitempty"`
		}{AlgorithmTiming: bench.ResultJSON(res, schedName), Disk: diskStats, Explain: explain}
		if *usePool {
			out.Scratch = &res.Scratch
			if ps, ok := engine.PoolStats(); ok {
				out.Pool = &ps
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("algorithm:       %s (T=%d, %s scheduling)\n", res.Algorithm, res.Workers, schedName)
	fmt.Printf("total time:      %s\n", res.Total.Round(time.Microsecond))
	for _, p := range res.Phases {
		fmt.Printf("  %-12s %s\n", p.Name+":", p.Duration.Round(time.Microsecond))
	}
	fmt.Printf("join matches:    %d\n", res.Matches)
	fmt.Printf("max(R.p+S.p):    %d\n", res.MaxSum)
	if res.PublicScanned > 0 {
		fmt.Printf("S tuples scanned in join phase: %d (|S| = %d)\n", res.PublicScanned, s.Len())
	}
	if *trackNUMA {
		fmt.Printf("NUMA accesses:   %d total, %.1f%% remote, %d sync ops, simulated cost %s\n",
			res.NUMA.TotalAccesses(), 100*res.NUMA.RemoteFraction(), res.NUMA.SyncOps,
			res.SimulatedNUMACost.Round(time.Microsecond))
	}
	if diskStats != nil {
		fmt.Printf("disk:            %d page writes, %d page reads, pool max resident %d (budget %d), %d hits, %d evictions\n",
			diskStats.PageWrites, diskStats.PageReads, diskStats.Pool.MaxResident,
			*pageBudget, diskStats.Pool.Hits, diskStats.Pool.Evictions)
	}
	if *usePool {
		fmt.Printf("scratch pool:    %d buffers requested, %d reused, %.1f MiB served\n",
			res.Scratch.Buffers, res.Scratch.Reused, float64(res.Scratch.Bytes)/(1<<20))
		if ps, ok := engine.PoolStats(); ok {
			fmt.Printf("                 pool holds %.1f MiB (peak %.1f MiB), %d discards\n",
				float64(ps.HeldBytes)/(1<<20), float64(ps.PeakHeldBytes)/(1<<20), ps.Discards)
		}
	}
	if *perWorker {
		fmt.Println("\nper-worker breakdown:")
		for _, wb := range res.PerWorker {
			fmt.Printf("  worker %2d:", wb.Worker)
			for _, p := range wb.Phases {
				fmt.Printf("  %s=%s", p.Name, p.Duration.Round(time.Microsecond))
			}
			fmt.Println()
		}
	}
}

// runPlanDemo executes the composable-plan showcase: a third relation T is
// drawn from R's keys, the plan joins (R ⋈ S) ⋈ T and aggregates SUM(payload)
// per key — streamed straight out of the key-ordered join output, without a
// hash table, when the algorithm is an MPSM variant.
func runPlanDemo(ctx context.Context, engine *mpsm.Engine, r, s *mpsm.Relation, seed uint64, scheduler mpsm.Scheduler, jsonOut, explainPlan, autoPlan bool, opts []mpsm.Option) {
	tRel := mpsm.GenerateForeignKey("T", r, r.Len(), seed+1)

	plan := mpsm.NewPlan()
	j1 := plan.Join(plan.Scan(r), plan.Scan(s))
	j2 := plan.Join(j1, plan.Scan(tRel))
	plan.GroupAggregate(j2, mpsm.AggSum)

	// Per-join scheduler labels for the report: the -sched flag, unless the
	// planner chose per join.
	schedNames := map[int]string{}
	var explain *mpsm.Explain
	if explainPlan || autoPlan {
		ex, err := engine.Explain(plan, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		if explainPlan {
			explain = ex
			if !jsonOut {
				fmt.Printf("physical plan:\n%s\n\n", ex)
			}
		}
		if autoPlan {
			joinIdx := 0
			for _, n := range ex.Nodes {
				if n.Kind == "Join" && n.Scheduler != "" {
					schedNames[joinIdx] = n.Scheduler
					joinIdx++
				}
			}
		}
	}
	schedName := func(join int) string {
		if name, ok := schedNames[join]; ok {
			return name
		}
		return scheduler.String()
	}

	res, err := engine.RunPlan(ctx, plan, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
		os.Exit(1)
	}

	if jsonOut {
		out := struct {
			Joins       []bench.AlgorithmTiming `json:"joins"`
			Groups      int                     `json:"groups"`
			TotalMillis float64                 `json:"total_millis"`
			ScanMillis  float64                 `json:"scan_millis"`
			Explain     *mpsm.Explain           `json:"explain,omitempty"`
		}{
			Explain:     explain,
			Groups:      res.Output.Len(),
			TotalMillis: float64(res.Total.Microseconds()) / 1000.0,
			ScanMillis:  float64(res.ScanTime.Microseconds()) / 1000.0,
		}
		for i, j := range res.Joins {
			out.Joins = append(out.Joins, bench.ResultJSON(j.Result, schedName(i)))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "mpsmjoin:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("plan:            (R ⋈ S) ⋈ T → GroupAggregate(sum), |T|=%d\n", tRel.Len())
	fmt.Printf("total time:      %s (scan %s)\n", res.Total.Round(time.Microsecond), res.ScanTime.Round(time.Microsecond))
	for i, j := range res.Joins {
		fmt.Printf("join %d:          %s, %d matches, %s\n",
			i+1, j.Result.Algorithm, j.Result.Matches, j.Result.Total.Round(time.Microsecond))
		for _, p := range j.Result.Phases {
			fmt.Printf("  %-12s %s\n", p.Name+":", p.Duration.Round(time.Microsecond))
		}
	}
	fmt.Printf("groups:          %d distinct keys\n", res.Output.Len())
	if n := res.Output.Len(); n > 0 {
		first, last := res.Output.Tuples[0], res.Output.Tuples[n-1]
		fmt.Printf("first group:     key=%d sum=%d\n", first.Key, first.Payload)
		fmt.Printf("last group:      key=%d sum=%d\n", last.Key, last.Payload)
	}
}

// parseSkew maps a command-line skew name to the workload constant.
func parseSkew(name string) workload.Skew {
	switch name {
	case "low":
		return workload.SkewLow80
	case "high":
		return workload.SkewHigh80
	default:
		return workload.SkewNone
	}
}

// parseSplitters maps a command-line splitter name to the strategy constant.
func parseSplitters(name string) (mpsm.SplitterStrategy, error) {
	switch name {
	case "equi-cost", "cost":
		return mpsm.SplitterEquiCost, nil
	case "equi-height", "height":
		return mpsm.SplitterEquiHeight, nil
	case "uniform", "static":
		return mpsm.SplitterUniform, nil
	default:
		return 0, fmt.Errorf("unknown splitter strategy %q", name)
	}
}
