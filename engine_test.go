package mpsm

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"

	"repro/internal/mergejoin"
)

var allAlgorithms = []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash}

// nestedLoopJoin is a deliberately naive O(|r|·|s|) oracle that shares no
// code with any algorithm or kernel under test.
func nestedLoopJoin(r, s *Relation) []Pair {
	var out []Pair
	for _, rt := range r.Tuples {
		for _, st := range s.Tuples {
			if rt.Key == st.Key {
				out = append(out, Pair{R: rt, S: st})
			}
		}
	}
	return out
}

func sortPairs(pairs []Pair) {
	sort.Slice(pairs, func(i, j int) bool {
		a, b := pairs[i], pairs[j]
		if a.R.Key != b.R.Key {
			return a.R.Key < b.R.Key
		}
		if a.R.Payload != b.R.Payload {
			return a.R.Payload < b.R.Payload
		}
		return a.S.Payload < b.S.Payload
	})
}

func TestEngineMatchesLegacyJoinAllAlgorithms(t *testing.T) {
	r := GenerateUniform("R", 2000, 101)
	s := GenerateForeignKey("S", r, 8000, 102)
	engine := New(WithWorkers(4))

	for _, alg := range allAlgorithms {
		legacy, err := Join(r, s, Config{Algorithm: alg, Workers: 4})
		if err != nil {
			t.Fatalf("%v legacy: %v", alg, err)
		}
		res, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v engine: %v", alg, err)
		}
		if res.Matches != legacy.Matches || res.MaxSum != legacy.MaxSum {
			t.Fatalf("%v: engine (%d, %d) != legacy (%d, %d)",
				alg, res.Matches, res.MaxSum, legacy.Matches, legacy.MaxSum)
		}
	}
}

func TestEngineStreamingSinkParityAllAlgorithms(t *testing.T) {
	// Every algorithm must emit exactly the pairs the default aggregate
	// counts, regardless of the sink: count and materialize sinks must agree
	// with the max-sum path on identical inputs.
	r := GenerateUniform("R", 1500, 103)
	s := GenerateForeignKey("S", r, 6000, 104)
	engine := New(WithWorkers(4))

	for _, alg := range allAlgorithms {
		base, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		count := NewCountSink()
		if _, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithSink(count)); err != nil {
			t.Fatalf("%v count sink: %v", alg, err)
		}
		if count.Total() != base.Matches {
			t.Fatalf("%v: count sink saw %d pairs, max-sum sink %d", alg, count.Total(), base.Matches)
		}
		mat := NewMaterializeSink()
		res, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithSink(mat))
		if err != nil {
			t.Fatalf("%v materialize sink: %v", alg, err)
		}
		if uint64(len(mat.Pairs())) != base.Matches || res.Matches != base.Matches {
			t.Fatalf("%v: materialized %d pairs (result says %d), want %d",
				alg, len(mat.Pairs()), res.Matches, base.Matches)
		}
	}
}

func TestEngineMaterializeMatchesNestedLoopOracle(t *testing.T) {
	// Small inputs in a narrow domain so the quadratic oracle stays cheap but
	// duplicate keys occur on both sides.
	r := GenerateSkewedWithDomain("R", 300, 400, SkewNone, 105)
	s := GenerateSkewedWithDomain("S", 900, 400, SkewNone, 106)
	want := nestedLoopJoin(r, s)
	sortPairs(want)

	engine := New(WithWorkers(3))
	for _, alg := range allAlgorithms {
		mat := NewMaterializeSink()
		if _, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithSink(mat)); err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := append([]Pair(nil), mat.Pairs()...)
		sortPairs(got)
		if len(got) != len(want) {
			t.Fatalf("%v: %d pairs, oracle has %d", alg, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: pair %d = %+v, oracle %+v", alg, i, got[i], want[i])
			}
		}
	}
}

func TestEngineTopKSink(t *testing.T) {
	r := GenerateUniform("R", 1000, 107)
	s := GenerateForeignKey("S", r, 4000, 108)
	oracle := nestedLoopJoin(r, s)
	sort.Slice(oracle, func(i, j int) bool { return oracle[i].Sum() > oracle[j].Sum() })

	top := NewTopKSink(7)
	if _, err := New(WithWorkers(4)).Join(context.Background(), r, s, WithSink(top)); err != nil {
		t.Fatal(err)
	}
	got := top.Top()
	if len(got) != 7 {
		t.Fatalf("Top() returned %d pairs, want 7", len(got))
	}
	for i, p := range got {
		if p.Sum() != oracle[i].Sum() {
			t.Fatalf("top[%d].Sum = %d, oracle %d", i, p.Sum(), oracle[i].Sum())
		}
	}
}

func TestEngineJoinAlreadyCancelledContext(t *testing.T) {
	r := GenerateUniform("R", 2000, 109)
	s := GenerateForeignKey("S", r, 8000, 110)
	engine := New(WithWorkers(4))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, alg := range allAlgorithms {
		res, err := engine.Join(ctx, r, s, WithAlgorithm(alg))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", alg, err)
		}
		if res != nil {
			t.Fatalf("%v: got a result from a join that never ran", alg)
		}
	}
}

// cancellingSink cancels the join's own context as soon as the first pair is
// emitted, modelling a consumer that aborts mid-flight. It counts every pair
// it still receives afterwards.
type cancellingSink struct {
	cancel  context.CancelFunc
	mu      sync.Mutex
	emitted uint64
}

func (c *cancellingSink) Open(workers int)                {}
func (c *cancellingSink) Writer(w int) mergejoin.Consumer { return (*cancellingWriter)(c) }
func (c *cancellingSink) Close() error                    { return nil }

type cancellingWriter cancellingSink

func (c *cancellingWriter) Consume(r, s Tuple) {
	c.mu.Lock()
	c.emitted++
	c.mu.Unlock()
	c.cancel()
}

func TestEngineJoinMidFlightCancel(t *testing.T) {
	r := GenerateUniform("R", 20000, 111)
	s := GenerateForeignKey("S", r, 80000, 112)
	engine := New(WithWorkers(8))

	full, err := engine.Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}

	for _, alg := range allAlgorithms {
		ctx, cancel := context.WithCancel(context.Background())
		snk := &cancellingSink{cancel: cancel}
		res, err := engine.Join(ctx, r, s, WithAlgorithm(alg), WithSink(snk))
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%v: err = %v, want context.Canceled", alg, err)
		}
		if res != nil {
			t.Fatalf("%v: canceled join still returned a result", alg)
		}
		if alg == PMPSM || alg == BMPSM || alg == DMPSM {
			// The MPSM merge loops check cancellation per public run / page,
			// so after the first emitted pair every worker stops within one
			// chunk: the join must abort well before draining all matches.
			if snk.emitted >= full.Matches/2 {
				t.Fatalf("%v: consumed %d of %d pairs despite mid-flight cancel",
					alg, snk.emitted, full.Matches)
			}
		}
	}
}

func TestEngineJoinMidFlightCancelBandAndKinds(t *testing.T) {
	// The band and non-inner merge loops live inside the mergejoin kernels;
	// they must honour per-run cancellation just like the inner path.
	r := GenerateSkewedWithDomain("R", 20000, 40000, SkewNone, 123)
	s := GenerateSkewedWithDomain("S", 80000, 40000, SkewNone, 124)
	engine := New(WithWorkers(8))

	cases := map[string][]Option{
		"band":       {WithBandWidth(50)},
		"left-outer": {WithKind(LeftOuterJoin)},
		"semi":       {WithKind(SemiJoin)},
	}
	for name, caseOpts := range cases {
		for _, alg := range []Algorithm{PMPSM, BMPSM} {
			ctx, cancel := context.WithCancel(context.Background())
			snk := &cancellingSink{cancel: cancel}
			opts := append([]Option{WithAlgorithm(alg), WithSink(snk)}, caseOpts...)
			res, err := engine.Join(ctx, r, s, opts...)
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("%v %s: err = %v, want context.Canceled", alg, name, err)
			}
			if res != nil {
				t.Fatalf("%v %s: canceled join still returned a result", alg, name)
			}
		}
	}
}

func TestEngineJoinStream(t *testing.T) {
	r := GenerateUniform("R", 1500, 113)
	s := GenerateForeignKey("S", r, 6000, 114)
	engine := New(WithWorkers(4))

	want, err := engine.Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}

	seq, errf := engine.JoinStream(context.Background(), r, s)
	var n uint64
	for range seq {
		n++
	}
	if err := errf(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if n != want.Matches {
		t.Fatalf("stream yielded %d pairs, want %d", n, want.Matches)
	}
}

func TestEngineJoinStreamEarlyBreak(t *testing.T) {
	r := GenerateUniform("R", 20000, 115)
	s := GenerateForeignKey("S", r, 80000, 116)
	engine := New(WithWorkers(8))

	seq, errf := engine.JoinStream(context.Background(), r, s)
	n := 0
	for range seq {
		n++
		if n == 5 {
			break
		}
	}
	if n != 5 {
		t.Fatalf("consumed %d pairs, want 5", n)
	}
	// Breaking out is normal stream termination, not an error.
	if err := errf(); err != nil {
		t.Fatalf("early break reported error: %v", err)
	}
}

func TestEngineJoinStreamParentCancellation(t *testing.T) {
	r := GenerateUniform("R", 2000, 117)
	s := GenerateForeignKey("S", r, 8000, 118)
	engine := New(WithWorkers(4))

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	seq, errf := engine.JoinStream(ctx, r, s)
	for range seq {
		t.Fatal("canceled stream yielded a pair")
	}
	if err := errf(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestEngineConcurrentJoins(t *testing.T) {
	// One engine, many concurrent joins with per-call sinks: construct once,
	// use everywhere.
	r := GenerateUniform("R", 1000, 119)
	s := GenerateForeignKey("S", r, 4000, 120)
	engine := New(WithWorkers(2))
	want, err := engine.Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			count := NewCountSink()
			alg := allAlgorithms[i%len(allAlgorithms)]
			if _, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithSink(count)); err != nil {
				errs[i] = err
				return
			}
			if count.Total() != want.Matches {
				errs[i] = errors.New("match count mismatch")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent join %d: %v", i, err)
		}
	}
}

func TestEngineJoinWithDiskStats(t *testing.T) {
	r := GenerateUniform("R", 3000, 121)
	s := GenerateForeignKey("S", r, 6000, 122)
	engine := New(WithWorkers(4), WithDisk(DiskConfig{PageSize: 256, PageBudget: 8}))
	res, stats, err := engine.JoinWithDiskStats(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil || stats.Pool.MaxResident > 8 {
		t.Fatalf("disk stats missing or over budget: %+v", stats)
	}
	legacy, legacyStats, err := JoinWithDiskStats(r, s, Config{Workers: 4, Disk: DiskConfig{PageSize: 256, PageBudget: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != legacy.Matches || stats.PublicPages != legacyStats.PublicPages {
		t.Fatalf("engine disk join diverged from legacy: (%d, %d) vs (%d, %d)",
			res.Matches, stats.PublicPages, legacy.Matches, legacyStats.PublicPages)
	}
}

func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, alg := range allAlgorithms {
		got, err := ParseAlgorithm(alg.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", alg.String(), err)
		}
		if got != alg {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %v", alg.String(), got, alg)
		}
	}
	// Case-insensitivity.
	for name, want := range map[string]Algorithm{
		"p-mpsm":    PMPSM,
		"P-MPSM":    PMPSM,
		"wisconsin": Wisconsin,
		"WISCONSIN": Wisconsin,
		"radix hj":  RadixHash,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("nested-loop"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
