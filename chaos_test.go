package mpsm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// chaosWorkload runs healthy and fault-injected queries concurrently against
// one service and verifies the failure-domain contract: faulty queries fail
// with typed errors (or succeed when their fault never fired), healthy
// queries return the exact fault-free answer, and after the storm the
// service holds zero reservations, zero leases, zero queued waiters, and a
// structurally intact scratch pool.
func chaosWorkload(t *testing.T, faulty, healthy int, specs []string) {
	t.Helper()
	r := GenerateUniform("R", 2000, 1)
	s := GenerateForeignKey("S", r, 8000, 2)

	engine := New(WithScratchPool(true), WithWorkers(2))
	// The queue must hold the full client population: the contract under
	// test is healthy-query parity, not back-pressure (which
	// TestServiceAdmissionRejects covers).
	svc := NewService(engine,
		WithMaxMemory(32<<20),
		WithAdmissionQueue(256, 10*time.Second),
		WithDefaultBudget(1<<20),
	)
	defer svc.Close()

	// Fault-free baseline for parity.
	want, err := svc.Join(context.Background(), r, s)
	if err != nil {
		t.Fatalf("baseline join: %v", err)
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	var panics, injectedOK, healthyOK int

	for i := 0; i < faulty; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f, err := ParseFaultSpec(specs[i%len(specs)] + fmt.Sprintf(",seed:%d", i))
			if err != nil {
				t.Errorf("fault spec: %v", err)
				return
			}
			res, err := svc.Join(context.Background(), r, s,
				WithQueryLabel(fmt.Sprintf("faulty-%d", i)),
				WithQueryOptions(WithFaultInjection(f)))
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				// The fault drew but never fired — a legitimate outcome for
				// probabilistic points — but the answer must be right.
				if res.Matches != want.Matches || res.MaxSum != want.MaxSum {
					failures = append(failures, fmt.Sprintf("faulty-%d: wrong surviving answer", i))
				}
				injectedOK++
			default:
				var pe *PanicError
				if errors.As(err, &pe) {
					panics++
					if pe.Query == "" {
						failures = append(failures, fmt.Sprintf("faulty-%d: PanicError without query label", i))
					}
				} else if !Retryable(err) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
					failures = append(failures, fmt.Sprintf("faulty-%d: untyped failure %v", i, err))
				}
			}
		}(i)
	}
	for i := 0; i < healthy; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := svc.Join(context.Background(), r, s,
				WithQueryLabel(fmt.Sprintf("healthy-%d", i)))
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				failures = append(failures, fmt.Sprintf("healthy-%d failed: %v", i, err))
				return
			}
			if res.Matches != want.Matches || res.MaxSum != want.MaxSum {
				failures = append(failures, fmt.Sprintf("healthy-%d: answer diverged under chaos", i))
				return
			}
			healthyOK++
		}(i)
	}
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if healthyOK != healthy {
		t.Errorf("only %d/%d healthy queries returned the fault-free answer", healthyOK, healthy)
	}
	if panics == 0 {
		t.Error("no query failed with a PanicError — the panic points never exercised isolation")
	}
	t.Logf("chaos: %d faulty (%d recovered panics, %d survived), %d healthy", faulty, panics, injectedOK, healthy)

	// The service must be fully drained and structurally intact.
	st := svc.Stats()
	if st.Active != 0 {
		t.Errorf("Active = %d after drain", st.Active)
	}
	if st.Admission.Waiting != 0 {
		t.Errorf("admission Waiting = %d after drain", st.Admission.Waiting)
	}
	if st.Memory.ReservedBytes != 0 {
		t.Errorf("ReservedBytes = %d after drain", st.Memory.ReservedBytes)
	}
	if st.Memory.ActiveLeases != 0 {
		t.Errorf("ActiveLeases = %d after drain", st.Memory.ActiveLeases)
	}
	if st.Degradation.PanicsRecovered == 0 {
		t.Error("DegradationStats.PanicsRecovered = 0 despite recovered panics")
	}
	if err := engine.pool.CheckIntegrity(); err != nil {
		t.Errorf("scratch pool integrity after chaos: %v", err)
	}
}

func TestChaosServiceSurvivesFaultStorm(t *testing.T) {
	faulty, healthy := 60, 60
	if testing.Short() {
		faulty, healthy = 20, 20
	}
	chaosWorkload(t, faulty, healthy, []string{
		"panic:1#1",                           // one worker panic per query
		"lease:1#1",                           // one allocation failure per query
		"panic:0.2",                           // probabilistic panics
		"stall:0.5@200us",                     // morsel stalls (slowdown, not failure)
		"cancel:1#1,stall:0.3@100us",          // cancellation storm + stalls
		"panic:0.3,lease:0.3,grant:0.5@100us", // mixed, plus grant races
	})
}

func TestChaosAllAlgorithmsPanicContained(t *testing.T) {
	r := GenerateUniform("R", 1000, 3)
	s := GenerateForeignKey("S", r, 4000, 4)
	for _, alg := range []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash} {
		for _, sched := range []Scheduler{Static, Morsel} {
			f := NewFaultSet(uint64(alg)*10+1).Enable(FaultWorkerPanic, 1).Limit(FaultWorkerPanic, 1)
			engine := New(WithScratchPool(true), WithWorkers(2))
			_, err := engine.Join(context.Background(), r, s,
				WithAlgorithm(alg), WithScheduler(sched), WithFaultInjection(f))
			if err == nil {
				t.Errorf("%v/%v: injected panic did not surface", alg, sched)
				continue
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Errorf("%v/%v: failure %v is not a PanicError", alg, sched, err)
			}
			// The engine survives: the same join runs clean afterwards.
			if _, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithScheduler(sched)); err != nil {
				t.Errorf("%v/%v: engine unusable after contained panic: %v", alg, sched, err)
			}
			if err := engine.pool.CheckIntegrity(); err != nil {
				t.Errorf("%v/%v: pool integrity after panic: %v", alg, sched, err)
			}
		}
	}
}

func TestChaosLeaseAllocFaultContained(t *testing.T) {
	r := GenerateUniform("R", 1000, 5)
	s := GenerateForeignKey("S", r, 4000, 6)
	engine := New(WithScratchPool(true), WithWorkers(2))
	f := NewFaultSet(7).Enable(FaultLeaseAlloc, 1).Limit(FaultLeaseAlloc, 1)
	if _, err := engine.Join(context.Background(), r, s, WithFaultInjection(f)); err == nil {
		t.Fatal("injected lease-allocation failure did not surface")
	}
	st, _ := engine.PoolStats()
	if st.ActiveLeases != 0 {
		t.Fatalf("ActiveLeases = %d after contained allocation failure", st.ActiveLeases)
	}
	if st.PoisonedLeases == 0 {
		t.Fatal("allocation failure did not quarantine the lease")
	}
	if err := engine.pool.CheckIntegrity(); err != nil {
		t.Fatalf("pool integrity: %v", err)
	}
	if _, err := engine.Join(context.Background(), r, s); err != nil {
		t.Fatalf("engine unusable after contained allocation failure: %v", err)
	}
}

// TestChaosNoGoroutineLeak bounds goroutine growth across a fault storm:
// recovered panics and canceled queries must not strand workers.
func TestChaosNoGoroutineLeak(t *testing.T) {
	r := GenerateUniform("R", 1000, 8)
	s := GenerateForeignKey("S", r, 4000, 9)
	engine := New(WithScratchPool(true), WithWorkers(4))
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		f := NewFaultSet(uint64(i)).Enable(FaultWorkerPanic, 0.5).EnableDelay(FaultMorselStall, 0.3, 100*time.Microsecond)
		engine.Join(context.Background(), r, s, WithScheduler(Morsel), WithFaultInjection(f))
	}
	deadline := time.After(5 * time.Second)
	for runtime.NumGoroutine() > before+10 {
		select {
		case <-deadline:
			t.Fatalf("goroutines grew from %d to %d across the fault storm", before, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}
