package mpsm

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

// TestScratchPoolParityAllAlgorithms verifies that pooling is purely an
// allocation strategy: for every algorithm × scheduler × pool on/off cell the
// join must produce the identical multiset of pairs (checked against the
// pool-off static run of the same algorithm) and identical aggregates.
func TestScratchPoolParityAllAlgorithms(t *testing.T) {
	r := GenerateUniform("R", 3000, 501)
	s := GenerateForeignKey("S", r, 12000, 502)

	for _, alg := range allAlgorithms {
		// Reference: pool off, static scheduling.
		ref := NewMaterializeSink()
		refEngine := New(WithWorkers(4), WithAlgorithm(alg))
		refRes, err := refEngine.Join(context.Background(), r, s, WithSink(ref))
		if err != nil {
			t.Fatalf("%v reference join: %v", alg, err)
		}
		refPairs := append([]Pair(nil), ref.Pairs()...)
		sortPairs(refPairs)

		for _, pool := range []bool{false, true} {
			for _, sched := range []Scheduler{Static, Morsel} {
				engine := New(WithWorkers(4), WithAlgorithm(alg), WithScheduler(sched), WithScratchPool(pool))
				for round := 0; round < 3; round++ { // round > 0 reuses pooled buffers
					mat := NewMaterializeSink()
					res, err := engine.Join(context.Background(), r, s, WithSink(mat))
					if err != nil {
						t.Fatalf("%v pool=%v sched=%v round %d: %v", alg, pool, sched, round, err)
					}
					if res.Matches != refRes.Matches {
						t.Fatalf("%v pool=%v sched=%v round %d: matches %d, want %d",
							alg, pool, sched, round, res.Matches, refRes.Matches)
					}
					got := append([]Pair(nil), mat.Pairs()...)
					sortPairs(got)
					if len(got) != len(refPairs) {
						t.Fatalf("%v pool=%v sched=%v round %d: %d pairs, want %d",
							alg, pool, sched, round, len(got), len(refPairs))
					}
					for i := range got {
						if got[i] != refPairs[i] {
							t.Fatalf("%v pool=%v sched=%v round %d: pair %d = %+v, want %+v",
								alg, pool, sched, round, i, got[i], refPairs[i])
						}
					}
					if pool && res.Scratch.Buffers == 0 {
						t.Fatalf("%v pool=%v sched=%v: no scratch traffic reported", alg, pool, sched)
					}
					if !pool && res.Scratch.Buffers != 0 {
						t.Fatalf("%v pool off reported scratch traffic %+v", alg, res.Scratch)
					}
					if pool && round > 0 && res.Scratch.Reused == 0 {
						t.Fatalf("%v pool=%v sched=%v round %d: warm join reused no buffers (%+v)",
							alg, pool, sched, round, res.Scratch)
					}
				}
			}
		}
	}
}

// TestScratchPoolDefaultSinkParity pins the default max-sum result across
// pool settings (the aggregate path the paper's evaluation query uses).
func TestScratchPoolDefaultSinkParity(t *testing.T) {
	r := GenerateUniform("R", 4000, 503)
	s := GenerateForeignKey("S", r, 16000, 504)
	for _, alg := range allAlgorithms {
		base, err := New(WithWorkers(4), WithAlgorithm(alg)).Join(context.Background(), r, s)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		pooled := New(WithWorkers(4), WithAlgorithm(alg), WithScratchPool(true))
		for round := 0; round < 2; round++ {
			res, err := pooled.Join(context.Background(), r, s)
			if err != nil {
				t.Fatalf("%v pooled round %d: %v", alg, round, err)
			}
			if res.Matches != base.Matches || res.MaxSum != base.MaxSum {
				t.Fatalf("%v pooled round %d: (%d, %d), want (%d, %d)",
					alg, round, res.Matches, res.MaxSum, base.Matches, base.MaxSum)
			}
		}
	}
}

// TestScratchPoolConcurrentJoins hammers one pooled engine from several
// goroutines: the pool is shared, the leases are per join, and every result
// must stay correct.
func TestScratchPoolConcurrentJoins(t *testing.T) {
	r := GenerateUniform("R", 2000, 505)
	s := GenerateForeignKey("S", r, 8000, 506)
	engine := New(WithWorkers(2), WithScratchPool(true))
	want, err := New(WithWorkers(2)).Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(alg Algorithm) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg))
				if err != nil {
					errs <- err
					return
				}
				if res.Matches != want.Matches || res.MaxSum != want.MaxSum {
					errs <- &parityError{alg: alg, got: res.Matches, want: want.Matches}
					return
				}
			}
		}(allAlgorithms[g%len(allAlgorithms)])
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, ok := engine.PoolStats(); !ok {
		t.Fatal("pooled engine reports no pool stats")
	}
}

type parityError struct {
	alg       Algorithm
	got, want uint64
}

func (e *parityError) Error() string { return e.alg.String() + ": match-count parity violated" }

// TestScratchPoolStreamSafety pins the documented JoinStream guarantee: the
// stream carries tuple values, so consuming it slowly (after the join's lease
// went back to the pool and was overwritten by another join) must still
// observe correct pairs.
func TestScratchPoolStreamSafety(t *testing.T) {
	r := GenerateUniform("R", 1500, 507)
	s := GenerateForeignKey("S", r, 6000, 508)
	engine := New(WithWorkers(2), WithScratchPool(true))

	want := nestedLoopJoin(r, s)
	sortPairs(want)

	seq, errf := engine.JoinStream(context.Background(), r, s)
	var got []Pair
	for rt, st := range seq {
		got = append(got, Pair{R: rt, S: st})
		if len(got)%500 == 0 {
			// Interleave another pooled join so released buffers get
			// reused and overwritten while this stream is mid-flight.
			if _, err := engine.Join(context.Background(), r, s); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := errf(); err != nil {
		t.Fatal(err)
	}
	sortPairs(got)
	if len(got) != len(want) {
		t.Fatalf("stream yielded %d pairs, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// measureJoinAllocs runs fn n times and returns the average allocated bytes
// and allocation count per run.
func measureJoinAllocs(t *testing.T, n int, fn func()) (bytesPerOp float64, allocsPerOp float64) {
	t.Helper()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < n; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.TotalAlloc-before.TotalAlloc) / float64(n),
		float64(after.Mallocs-before.Mallocs) / float64(n)
}

// TestSteadyStateAllocations pins the tentpole claim: with the scratch pool
// enabled, a warmed-up Engine.Join allocates ≤ 10% of the bytes the unpooled
// engine allocates (in practice ~1%) — every data-sized buffer is reused, and
// what remains is fixed per-join overhead (goroutines, phase closures, result
// structs), which also bounds the allocation count: pooling must never make
// it worse.
func TestSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under the race detector")
	}
	r := GenerateUniform("R", 30000, 509)
	s := GenerateForeignKey("S", r, 120000, 510)
	ctx := context.Background()

	const rounds = 5
	join := func(e *Engine) func() {
		return func() {
			if _, err := e.Join(ctx, r, s); err != nil {
				t.Fatal(err)
			}
		}
	}

	plain := New(WithWorkers(2))
	pooled := New(WithWorkers(2), WithScratchPool(true))
	// Warm up both engines (the pooled one populates its free lists).
	join(plain)()
	join(pooled)()
	join(pooled)()

	plainBytes, plainAllocs := measureJoinAllocs(t, rounds, join(plain))
	pooledBytes, pooledAllocs := measureJoinAllocs(t, rounds, join(pooled))

	t.Logf("pool off: %.0f bytes/op, %.1f allocs/op", plainBytes, plainAllocs)
	t.Logf("pool on:  %.0f bytes/op, %.1f allocs/op", pooledBytes, pooledAllocs)

	if pooledBytes > plainBytes/10 {
		t.Fatalf("warm pooled join allocates %.0f bytes/op, want <= 10%% of unpooled %.0f",
			pooledBytes, plainBytes)
	}
	// The count is dominated by fixed scheduling overhead either way; the
	// pool trades the data-buffer allocations for lease bookkeeping and must
	// at least break even (small tolerance for measurement jitter).
	if pooledAllocs > plainAllocs*1.1+8 {
		t.Fatalf("warm pooled join makes %.1f allocs/op, unpooled makes %.1f — pooling made it worse",
			pooledAllocs, plainAllocs)
	}
}
