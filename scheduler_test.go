package mpsm

import (
	"context"
	"testing"
)

func TestParseScheduler(t *testing.T) {
	for name, want := range map[string]Scheduler{
		"static": Static,
		"Static": Static,
		"morsel": Morsel,
		"MORSEL": Morsel,
	} {
		got, err := ParseScheduler(name)
		if err != nil || got != want {
			t.Fatalf("ParseScheduler(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseScheduler("unknown"); err == nil {
		t.Fatal("ParseScheduler should reject unknown names")
	}
}

// TestEngineSchedulerParity runs the same joins through the public Engine
// with both schedulers and requires identical results, including per-call
// overrides of an engine-level default.
func TestEngineSchedulerParity(t *testing.T) {
	r := GenerateUniform("R", 2000, 11)
	s := GenerateForeignKey("S", r, 8000, 12)

	static := New(WithWorkers(6))
	morsel := New(WithWorkers(6), WithScheduler(Morsel), WithMorselSize(128))

	for _, alg := range []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash} {
		want, err := static.Join(context.Background(), r, s, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v static: %v", alg, err)
		}
		got, err := morsel.Join(context.Background(), r, s, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v morsel: %v", alg, err)
		}
		if got.Matches != want.Matches || got.MaxSum != want.MaxSum {
			t.Fatalf("%v: morsel (matches=%d max=%d) != static (matches=%d max=%d)",
				alg, got.Matches, got.MaxSum, want.Matches, want.MaxSum)
		}
		if want.Matches == 0 {
			t.Fatalf("%v: no matches — the parity check is vacuous", alg)
		}
	}

	// A per-call WithScheduler overrides the engine default.
	want, err := morsel.Join(context.Background(), r, s, WithScheduler(Static))
	if err != nil {
		t.Fatal(err)
	}
	if want.Matches == 0 {
		t.Fatal("per-call static override produced no matches")
	}
}

// TestSchedulerStreamAndCancel checks that the morsel scheduler composes
// with the streaming iterator, including its break-cancels-join semantics.
func TestSchedulerStreamAndCancel(t *testing.T) {
	r := GenerateUniform("R", 4000, 21)
	s := GenerateForeignKey("S", r, 16000, 22)
	engine := New(WithWorkers(4), WithScheduler(Morsel), WithMorselSize(64))

	seq, errf := engine.JoinStream(context.Background(), r, s)
	var seen int
	for range seq {
		seen++
		if seen == 10 {
			break
		}
	}
	if err := errf(); err != nil {
		t.Fatalf("breaking out of a morsel-scheduled stream errored: %v", err)
	}
	if seen != 10 {
		t.Fatalf("consumed %d pairs, want 10", seen)
	}

	// A canceled context aborts a morsel-scheduled join with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.Join(ctx, r, s); err != context.Canceled {
		t.Fatalf("canceled morsel join returned %v, want context.Canceled", err)
	}
}
