package mpsm

import (
	"context"
	"reflect"
	"sort"
	"testing"
)

// hashAggregate is the reference group-by over (key, value) tuples: a plain
// hash aggregation sorted by key, sharing no code with the plan executor.
func hashAggregate(tuples []Tuple, agg Agg) []Tuple {
	type acc struct {
		val   uint64
		count uint64
	}
	groups := make(map[uint64]*acc)
	for _, t := range tuples {
		a, ok := groups[t.Key]
		if !ok {
			groups[t.Key] = &acc{val: t.Payload, count: 1}
			continue
		}
		a.count++
		switch agg {
		case AggSum:
			a.val += t.Payload
		case AggMin:
			if t.Payload < a.val {
				a.val = t.Payload
			}
		case AggMax:
			if t.Payload > a.val {
				a.val = t.Payload
			}
		}
	}
	out := make([]Tuple, 0, len(groups))
	for k, a := range groups {
		v := a.val
		if agg == AggCount {
			v = a.count
		}
		out = append(out, Tuple{Key: k, Payload: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// materializedJoin runs one engine join and materializes the default
// projection, the manual counterpart of a join feeding another operator.
func materializedJoin(t *testing.T, engine *Engine, r, s *Relation, opts ...Option) *Relation {
	t.Helper()
	snk := NewMaterializeSink()
	if _, err := engine.Join(context.Background(), r, s, append(opts, WithSink(snk))...); err != nil {
		t.Fatal(err)
	}
	return snk.Relation("intermediate")
}

// TestRunPlanThreeWayParity is the acceptance check of the operator layer: a
// 3-way plan (R ⋈ S) ⋈ T followed by a GroupAggregate must produce exactly
// the groups of manually composed pairwise joins plus a reference hash
// aggregation, for every algorithm as the first join under both schedulers.
func TestRunPlanThreeWayParity(t *testing.T) {
	r := GenerateUniform("R", 1500, 501)
	s := GenerateForeignKey("S", r, 3000, 502)
	tr := GenerateForeignKey("T", r, 2000, 503)

	for _, mode := range []Scheduler{Static, Morsel} {
		engine := New(WithWorkers(4), WithScheduler(mode), WithScratchPool(true))

		for _, alg := range allAlgorithms {
			// Manual composition through the classic one-join API.
			inter := materializedJoin(t, engine, r, s, WithAlgorithm(alg))
			joined := materializedJoin(t, engine, inter, tr)
			want := hashAggregate(joined.Tuples, AggSum)

			plan := NewPlan()
			pr := plan.Scan(r)
			ps := plan.Scan(s)
			pt := plan.Scan(tr)
			j1 := plan.Join(pr, ps, WithAlgorithm(alg))
			j2 := plan.Join(j1, pt, WithAlgorithm(PMPSM))
			plan.GroupAggregate(j2, AggSum)

			res, err := engine.RunPlan(context.Background(), plan)
			if err != nil {
				t.Fatalf("%v/%v: %v", alg, mode, err)
			}
			if !reflect.DeepEqual(res.Output.Tuples, want) {
				t.Fatalf("%v/%v: plan groups diverge from manual composition (%d vs %d groups)",
					alg, mode, res.Output.Len(), len(want))
			}
			if len(res.Joins) != 2 {
				t.Fatalf("%v/%v: %d join results, want 2", alg, mode, len(res.Joins))
			}
			if res.Joins[0].Result.Matches != uint64(inter.Len()) {
				t.Fatalf("%v/%v: first join matched %d, manual %d",
					alg, mode, res.Joins[0].Result.Matches, inter.Len())
			}
			if alg == DMPSM && res.Joins[0].Disk == nil {
				t.Fatalf("%v/%v: missing disk stats on the D-MPSM join", alg, mode)
			}
		}
	}
}

func TestRunPlanSinkTerminalMatchesJoin(t *testing.T) {
	r := GenerateUniform("R", 1000, 504)
	s := GenerateForeignKey("S", r, 4000, 505)
	engine := New(WithWorkers(4))

	direct, err := engine.Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}

	plan := NewPlan()
	plan.Sink(plan.Join(plan.Scan(r), plan.Scan(s)), nil)
	res, err := engine.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != nil {
		t.Fatal("sink-terminated plan should not materialize an output relation")
	}
	if res.Matches != direct.Matches || res.MaxSum != direct.MaxSum {
		t.Fatalf("plan (%d, %d) != direct join (%d, %d)", res.Matches, res.MaxSum, direct.Matches, direct.MaxSum)
	}
}

func TestRunPlanSelfJoinSharedScan(t *testing.T) {
	r := GenerateUniform("R", 800, 506)
	engine := New(WithWorkers(2))

	plan := NewPlan()
	scan := plan.Scan(r)
	plan.Sink(plan.Join(scan, scan), nil)
	res, err := engine.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(nestedLoopJoin(r, r)))
	if res.Matches != want {
		t.Fatalf("self join matched %d, oracle %d", res.Matches, want)
	}
}

func TestRunPlanScanPredicatePushdown(t *testing.T) {
	r := GenerateUniform("R", 2000, 507)
	s := GenerateForeignKey("S", r, 4000, 508)
	engine := New(WithWorkers(4))
	keep := func(t Tuple) bool { return t.Key%2 == 0 }

	plan := NewPlan()
	plan.Sink(plan.Join(plan.Scan(r, keep), plan.Scan(s, keep)), nil)
	res, err := engine.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}

	var want uint64
	for _, p := range nestedLoopJoin(r, s) {
		if keep(p.R) && keep(p.S) {
			want++
		}
	}
	if res.Matches != want {
		t.Fatalf("filtered plan matched %d, oracle %d", res.Matches, want)
	}
	if res.ScanTime <= 0 {
		t.Fatal("plan did not record scan time for predicated scans")
	}
}

func TestRunPlanBuilderErrors(t *testing.T) {
	r := GenerateUniform("R", 100, 509)
	engine := New()

	if _, err := engine.RunPlan(context.Background(), NewPlan()); err == nil {
		t.Fatal("empty plan accepted")
	}
	if _, err := engine.RunPlan(context.Background(), nil); err == nil {
		t.Fatal("nil plan accepted")
	}

	// A node handle from one plan must not wire into another.
	other := NewPlan()
	foreign := other.Scan(r)
	plan := NewPlan()
	plan.Join(plan.Scan(r), foreign)
	if _, err := engine.RunPlan(context.Background(), plan); err == nil {
		t.Fatal("cross-plan node handle accepted")
	}

	// Unterminated multi-root plans are rejected by validation.
	dangling := NewPlan()
	dangling.Scan(r)
	dangling.Scan(r)
	if _, err := engine.RunPlan(context.Background(), dangling); err == nil {
		t.Fatal("multi-root plan accepted")
	}
}

func TestRunPlanPerNodeOptionsOverride(t *testing.T) {
	r := GenerateUniform("R", 1000, 510)
	s := GenerateForeignKey("S", r, 2000, 511)
	// Engine default Wisconsin; the node override forces B-MPSM, whose
	// result carries the algorithm name.
	engine := New(WithWorkers(2), WithAlgorithm(Wisconsin))

	plan := NewPlan()
	plan.Sink(plan.Join(plan.Scan(r), plan.Scan(s), WithAlgorithm(BMPSM)), nil)
	res, err := engine.RunPlan(context.Background(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joins) != 1 || res.Joins[0].Result.Algorithm != "B-MPSM" {
		t.Fatalf("per-node algorithm override ignored: %+v", res.Joins[0].Result.Algorithm)
	}
}
