package mpsm

// Benchmark harness: one testing.B benchmark (family) per table/figure of the
// paper's evaluation. The benchmarks run at a reduced scale controlled by
// benchRSize so that `go test -bench=.` completes in minutes; the mpsmbench
// command runs the same experiments at configurable scale and prints the
// paper-style tables.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/hashjoin"
	"repro/internal/mergejoin"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sorting"
	"repro/internal/workload"
)

// The benchmarks run to completion on a background context, so the
// context-cancellation error paths cannot trigger; these wrappers keep the
// measurement loops free of error plumbing.

func benchPMPSM(r, s *relation.Relation, opts core.Options) *result.Result {
	res, err := core.PMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func benchBMPSM(r, s *relation.Relation, opts core.Options) *result.Result {
	res, err := core.BMPSM(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func benchDMPSM(r, s *relation.Relation, opts core.Options, diskOpts core.DiskOptions) *result.Result {
	res, _, err := core.DMPSM(context.Background(), r, s, opts, diskOpts)
	if err != nil {
		panic(err)
	}
	return res
}

func benchWisconsin(r, s *relation.Relation, opts hashjoin.Options) *result.Result {
	res, err := hashjoin.Wisconsin(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

func benchRadix(r, s *relation.Relation, opts hashjoin.RadixOptions) *result.Result {
	res, err := hashjoin.Radix(context.Background(), r, s, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// benchRSize is the |R| cardinality used by the join benchmarks.
const benchRSize = 1 << 16

// benchWorkers is the default parallelism of the join benchmarks.
const benchWorkers = 8

// benchDataset memoizes generated datasets across benchmark iterations.
var benchDatasets = map[string][2]*relation.Relation{}

func benchDataset(mult int, rSkew, sSkew workload.Skew) (*relation.Relation, *relation.Relation) {
	key := fmt.Sprintf("%d-%v-%v", mult, rSkew, sSkew)
	if d, ok := benchDatasets[key]; ok {
		return d[0], d[1]
	}
	r, s, err := workload.Generate(workload.Spec{
		RSize:        benchRSize,
		Multiplicity: mult,
		RSkew:        rSkew,
		SSkew:        sSkew,
		ForeignKey:   rSkew == workload.SkewNone && sSkew == workload.SkewNone,
		Seed:         9000 + uint64(mult),
	})
	if err != nil {
		panic(err)
	}
	benchDatasets[key] = [2]*relation.Relation{r, s}
	return r, s
}

// BenchmarkSection23Sort compares the paper's three-phase Radix/IntroSort with
// the standard library sort (Section 2.3: "about 30% faster than the STL
// sort").
func BenchmarkSection23Sort(b *testing.B) {
	input := workload.UniformRelation("R", 1<<18, workload.DefaultKeyDomain, 77)
	b.Run("RadixIntroSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := input.Clone().Tuples
			b.StartTimer()
			sorting.Sort(work)
		}
	})
	b.Run("StdlibSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			work := input.Clone().Tuples
			b.StartTimer()
			sorting.SortStdlib(work)
		}
	})
}

// BenchmarkFigure1Partitioning benchmarks the Figure 1(2) micro-benchmark:
// synchronization-free scatter into precomputed sub-partitions (the design
// MPSM uses) versus the same scatter driven by shared atomic write cursors is
// covered by the bench package experiment; here we measure the
// histogram/prefix-sum/scatter pipeline that phase 2 of P-MPSM runs.
func BenchmarkFigure1Partitioning(b *testing.B) {
	r, _ := benchDataset(1, workload.SkewNone, workload.SkewNone)
	opts := core.Options{Workers: benchWorkers, Splitters: core.SplitterUniform}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := benchPMPSM(r, r, opts)
		if res.Matches == 0 {
			b.Fatal("unexpected empty join")
		}
	}
}

// BenchmarkFigure12 compares P-MPSM, the radix hash join (Vectorwise
// stand-in) and the Wisconsin hash join on uniform data for the paper's
// multiplicities (Figure 12).
func BenchmarkFigure12(b *testing.B) {
	for _, mult := range []int{1, 4, 8, 16} {
		r, s := benchDataset(mult, workload.SkewNone, workload.SkewNone)
		b.Run(fmt.Sprintf("PMPSM/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(r, s, core.Options{Workers: benchWorkers})
			}
		})
		b.Run(fmt.Sprintf("RadixHJ/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRadix(r, s, hashjoin.RadixOptions{Options: hashjoin.Options{Workers: benchWorkers}})
			}
		})
		b.Run(fmt.Sprintf("Wisconsin/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchWisconsin(r, s, hashjoin.Options{Workers: benchWorkers})
			}
		})
	}
}

// BenchmarkFigure13 measures P-MPSM's scalability in the number of workers
// (Figure 13) at multiplicity 4.
func BenchmarkFigure13(b *testing.B) {
	r, s := benchDataset(4, workload.SkewNone, workload.SkewNone)
	for _, workers := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("PMPSM/T=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(r, s, core.Options{Workers: workers})
			}
		})
		b.Run(fmt.Sprintf("RadixHJ/T=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchRadix(r, s, hashjoin.RadixOptions{Options: hashjoin.Options{Workers: workers}})
			}
		})
	}
}

// BenchmarkFigure14 measures the effect of role reversal (Figure 14): the
// smaller relation R as private input versus the larger S as private input.
func BenchmarkFigure14(b *testing.B) {
	for _, mult := range []int{1, 4, 8, 16} {
		r, s := benchDataset(mult, workload.SkewNone, workload.SkewNone)
		b.Run(fmt.Sprintf("RPrivate/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(r, s, core.Options{Workers: benchWorkers})
			}
		})
		b.Run(fmt.Sprintf("SPrivate/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(s, r, core.Options{Workers: benchWorkers})
			}
		})
	}
}

// BenchmarkFigure15 measures the effect of location skew in S (Figure 15):
// uniformly shuffled S versus S arranged so that each private partition's join
// partners cluster in a single run.
func BenchmarkFigure15(b *testing.B) {
	r, s := benchDataset(4, workload.SkewNone, workload.SkewNone)
	clustered := s.Clone()
	workload.ApplyLocationSkew(clustered, benchWorkers, workload.LocationClustered, workload.DefaultKeyDomain)

	b.Run("NoLocationSkew", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPMPSM(r, s, core.Options{Workers: benchWorkers})
		}
	})
	b.Run("ClusteredS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPMPSM(r, clustered, core.Options{Workers: benchWorkers})
		}
	})
}

// BenchmarkFigure16 measures the negatively correlated skew workload
// (Figure 16) under equi-height R partitioning versus equi-cost splitters.
func BenchmarkFigure16(b *testing.B) {
	r, s := benchDataset(4, workload.SkewHigh80, workload.SkewLow80)
	b.Run("EquiHeight", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPMPSM(r, s, core.Options{Workers: benchWorkers, Splitters: core.SplitterEquiHeight})
		}
	})
	b.Run("EquiCostSplitters", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPMPSM(r, s, core.Options{Workers: benchWorkers, Splitters: core.SplitterEquiCost})
		}
	})
}

// BenchmarkFigure9Histograms measures the fine-grained histogram granularity
// sweep (Figure 9): the P-MPSM partitioning phase with 32 to 2048 radix
// clusters.
func BenchmarkFigure9Histograms(b *testing.B) {
	r, s := benchDataset(1, workload.SkewNone, workload.SkewNone)
	for _, bits := range []int{5, 6, 7, 8, 9, 10, 11} {
		b.Run(fmt.Sprintf("clusters=%d", 1<<bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(r, s, core.Options{Workers: benchWorkers, HistogramBits: bits})
			}
		})
	}
}

// BenchmarkAblationBMPSMvsPMPSM quantifies the pay-off of range partitioning
// (Sections 2.2 / 3.2): B-MPSM scans T·|S| public tuples, P-MPSM only |S|.
func BenchmarkAblationBMPSMvsPMPSM(b *testing.B) {
	for _, mult := range []int{1, 4, 8} {
		r, s := benchDataset(mult, workload.SkewNone, workload.SkewNone)
		b.Run(fmt.Sprintf("BMPSM/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchBMPSM(r, s, core.Options{Workers: benchWorkers})
			}
		})
		b.Run(fmt.Sprintf("PMPSM/mult=%d", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchPMPSM(r, s, core.Options{Workers: benchWorkers})
			}
		})
	}
}

// BenchmarkDMPSM exercises the disk-enabled variant under different page
// budgets (Section 3.1, Figure 4).
func BenchmarkDMPSM(b *testing.B) {
	r, s := benchDataset(4, workload.SkewNone, workload.SkewNone)
	for _, budget := range []int{0, 64, 16} {
		b.Run(fmt.Sprintf("budget=%d", budget), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchDMPSM(r, s, core.Options{Workers: 4}, core.DiskOptions{PageSize: 1024, PageBudget: budget})
			}
		})
	}
}

// BenchmarkMergeJoinKernel measures the raw merge-join kernel with and without
// the interpolation-search skip (Section 3.2.2).
func BenchmarkMergeJoinKernel(b *testing.B) {
	r, s := benchDataset(4, workload.SkewNone, workload.SkewNone)
	priv := r.Clone().Tuples
	pub := s.Clone().Tuples
	sorting.Sort(priv)
	sorting.Sort(pub)
	// Narrow the private run to 1/8 of the key domain to expose the skip.
	narrow := priv[:len(priv)/8]

	b.Run("FullScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var agg mergejoin.MaxAggregate
			mergejoin.Join(narrow, pub, &agg)
		}
	})
	b.Run("InterpolationSkip", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var agg mergejoin.MaxAggregate
			mergejoin.JoinWithSkip(narrow, pub, &agg)
		}
	})
}

// BenchmarkWisconsinBuildProbe isolates the build and probe phases of the
// shared hash table (the Figure 12 "build"/"probe" bars).
func BenchmarkWisconsinBuildProbe(b *testing.B) {
	r, s := benchDataset(4, workload.SkewNone, workload.SkewNone)
	for _, workers := range []int{1, benchWorkers} {
		b.Run(fmt.Sprintf("T=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchWisconsin(r, s, hashjoin.Options{Workers: workers})
			}
		})
	}
}
