package mpsm

import (
	"testing"

	"repro/internal/mergejoin"
)

func TestJoinPublicAPIAllAlgorithms(t *testing.T) {
	r := GenerateUniform("R", 2000, 1)
	s := GenerateForeignKey("S", r, 8000, 2)

	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	for _, alg := range []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash} {
		res, err := Join(r, s, Config{Algorithm: alg, Workers: 4})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Matches != want.Count || res.MaxSum != want.Max {
			t.Fatalf("%v: got (%d, %d), want (%d, %d)", alg, res.Matches, res.MaxSum, want.Count, want.Max)
		}
		if res.Total <= 0 {
			t.Fatalf("%v: total time not recorded", alg)
		}
	}
}

func TestJoinNilInputs(t *testing.T) {
	r := GenerateUniform("R", 10, 1)
	if _, err := Join(nil, r, Config{}); err == nil {
		t.Fatal("nil private relation accepted")
	}
	if _, err := Join(r, nil, Config{}); err == nil {
		t.Fatal("nil public relation accepted")
	}
	if _, _, err := JoinWithDiskStats(nil, r, Config{}); err == nil {
		t.Fatal("nil private relation accepted by JoinWithDiskStats")
	}
}

func TestJoinWithDiskStats(t *testing.T) {
	r := GenerateUniform("R", 3000, 3)
	s := GenerateForeignKey("S", r, 6000, 4)
	res, stats, err := JoinWithDiskStats(r, s, Config{
		Workers: 4,
		Disk:    DiskConfig{PageSize: 256, PageBudget: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("disk stats missing")
	}
	if stats.Pool.MaxResident > 8 {
		t.Fatalf("buffer pool exceeded budget: %+v", stats.Pool)
	}
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)
	if res.Matches != want.Count {
		t.Fatalf("matches = %d, want %d", res.Matches, want.Count)
	}
}

func TestJoinNUMATracking(t *testing.T) {
	r := GenerateUniform("R", 4000, 5)
	s := GenerateForeignKey("S", r, 8000, 6)
	res, err := Join(r, s, Config{Workers: 8, TrackNUMA: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.NUMA.TotalAccesses() == 0 {
		t.Fatal("NUMA accounting missing")
	}
	if res.NUMA.SyncOps != 0 {
		t.Fatal("P-MPSM should perform no fine-grained synchronization")
	}
}

func TestJoinSplitterStrategies(t *testing.T) {
	r := GenerateSkewed("R", 3000, SkewHigh80, 7)
	s := GenerateSkewed("S", 12000, SkewLow80, 8)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)
	for _, strategy := range []SplitterStrategy{SplitterEquiCost, SplitterEquiHeight, SplitterUniform} {
		res, err := Join(r, s, Config{Workers: 8, Splitters: strategy})
		if err != nil {
			t.Fatal(err)
		}
		if res.Matches != want.Count {
			t.Fatalf("%v: matches = %d, want %d", strategy, res.Matches, want.Count)
		}
	}
}

func TestJoinKindsPublicAPI(t *testing.T) {
	// A narrow key domain makes some R tuples match and others not, so all
	// four kinds have distinct, non-trivial cardinalities.
	r := GenerateSkewedWithDomain("R", 3000, 6000, SkewNone, 31)
	s := GenerateSkewedWithDomain("S", 9000, 6000, SkewNone, 32)

	for _, kind := range []JoinKind{InnerJoin, LeftOuterJoin, SemiJoin, AntiJoin} {
		var want mergejoin.MaxAggregate
		mergejoin.ReferenceJoinKind(kind, r.Tuples, s.Tuples, &want)
		res, err := Join(r, s, Config{Workers: 4, Kind: kind})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Matches != want.Count {
			t.Fatalf("%v: matches = %d, want %d", kind, res.Matches, want.Count)
		}
	}

	// Hash joins only support inner joins.
	if _, err := Join(r, s, Config{Algorithm: Wisconsin, Kind: SemiJoin}); err == nil {
		t.Fatal("semi join on the Wisconsin hash join should be rejected")
	}
}

func TestGenerateSkewedDistributions(t *testing.T) {
	low := GenerateSkewed("low", 20000, SkewLow80, 9)
	cut := uint64(1) << 32 / 5
	count := 0
	for _, tup := range low.Tuples {
		if tup.Key < cut {
			count++
		}
	}
	if frac := float64(count) / float64(low.Len()); frac < 0.75 {
		t.Fatalf("SkewLow80 fraction = %f", frac)
	}
}

func TestNewRelation(t *testing.T) {
	rel := NewRelation("mine", []Tuple{{Key: 1, Payload: 2}})
	if rel.Len() != 1 || rel.Name != "mine" {
		t.Fatalf("NewRelation = %+v", rel)
	}
}
