package mpsm

import (
	"context"
	"fmt"
	"testing"
)

// TestColumnarRowParityAllAlgorithms is the differential gate for the
// columnar batch path: every algorithm, under both schedulers and with the
// scratch pool on and off, must materialize the exact multiset of pairs the
// row-at-a-time path produces, for the default batch size and a small odd
// batch size that forces frequent flushes. The adversarial distributions
// (uniform, low-skew, high-skew over a narrow domain) provoke heavy
// duplicate-key cross products.
func TestColumnarRowParityAllAlgorithms(t *testing.T) {
	type dataset struct {
		name string
		r, s *Relation
	}
	datasets := []dataset{
		{"fk-uniform", GenerateUniform("R", 800, 201), nil},
		{"narrow-low-skew", GenerateSkewedWithDomain("R", 400, 300, SkewLow80, 203), GenerateSkewedWithDomain("S", 1200, 300, SkewLow80, 204)},
		{"narrow-high-skew", GenerateSkewedWithDomain("R", 400, 250, SkewHigh80, 205), GenerateSkewedWithDomain("S", 1200, 250, SkewHigh80, 206)},
	}
	datasets[0].s = GenerateForeignKey("S", datasets[0].r, 3200, 202)

	for _, pool := range []bool{false, true} {
		engine := New(WithWorkers(3), WithScratchPool(pool))
		for _, ds := range datasets {
			// Row-path baseline per algorithm, shared across schedulers and
			// batch sizes.
			for _, alg := range allAlgorithms {
				rowMat := NewMaterializeSink()
				rowRes, err := engine.Join(context.Background(), ds.r, ds.s,
					WithAlgorithm(alg), WithBatchSize(-1), WithSink(rowMat))
				if err != nil {
					t.Fatalf("%s/%v row baseline: %v", ds.name, alg, err)
				}
				want := append([]Pair(nil), rowMat.Pairs()...)
				sortPairs(want)

				for _, sched := range []Scheduler{Static, Morsel} {
					for _, batchSize := range []int{0, 33} {
						name := fmt.Sprintf("%s/%v/pool=%v/sched=%v/batch=%d",
							ds.name, alg, pool, sched, batchSize)
						mat := NewMaterializeSink()
						res, err := engine.Join(context.Background(), ds.r, ds.s,
							WithAlgorithm(alg), WithScheduler(sched),
							WithBatchSize(batchSize), WithSink(mat))
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						if res.Matches != rowRes.Matches || res.MaxSum != rowRes.MaxSum {
							t.Fatalf("%s: (matches, maxSum) = (%d, %d), row path (%d, %d)",
								name, res.Matches, res.MaxSum, rowRes.Matches, rowRes.MaxSum)
						}
						got := append([]Pair(nil), mat.Pairs()...)
						sortPairs(got)
						if len(got) != len(want) {
							t.Fatalf("%s: %d pairs, row path %d", name, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s: pair %d = %+v, row path %+v", name, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestColumnarBatchCounters pins when Result.Batch reports traffic: the
// columnar-eligible algorithms (B-MPSM, P-MPSM and the hash joins, which
// always batch their probe output) must report it, and WithBatchSize(-1)
// must silence it for the MPSM algorithms by falling back to the row path.
func TestColumnarBatchCounters(t *testing.T) {
	r := GenerateUniform("R", 1000, 207)
	s := GenerateForeignKey("S", r, 4000, 208)
	engine := New(WithWorkers(4))

	for _, alg := range []Algorithm{BMPSM, PMPSM, Wisconsin, RadixHash} {
		res, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg))
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Matches == 0 {
			t.Fatalf("%v: no matches, test dataset is broken", alg)
		}
		if res.Batch.Batches == 0 || res.Batch.Tuples != res.Matches {
			t.Fatalf("%v: Batch = %+v with %d matches; want nonzero batches covering every match",
				alg, res.Batch, res.Matches)
		}
	}

	for _, alg := range []Algorithm{BMPSM, PMPSM} {
		res, err := engine.Join(context.Background(), r, s, WithAlgorithm(alg), WithBatchSize(-1))
		if err != nil {
			t.Fatalf("%v row: %v", alg, err)
		}
		if res.Batch.Batches != 0 || res.Batch.Tuples != 0 {
			t.Fatalf("%v: WithBatchSize(-1) still reported batch traffic %+v", alg, res.Batch)
		}
	}
}

// TestColumnarIneligibleFallsBackToRows verifies the eligibility guard: band
// joins and non-inner kinds must run the row kernels (no batch traffic) and
// still produce correct results against the row baseline.
func TestColumnarIneligibleFallsBackToRows(t *testing.T) {
	r := GenerateSkewedWithDomain("R", 500, 2000, SkewNone, 209)
	s := GenerateSkewedWithDomain("S", 1500, 2000, SkewNone, 210)
	engine := New(WithWorkers(3))

	cases := []struct {
		name string
		opts []Option
	}{
		{"band", []Option{WithBandWidth(3)}},
		{"left-outer", []Option{WithKind(LeftOuterJoin)}},
		{"semi", []Option{WithKind(SemiJoin)}},
		{"anti", []Option{WithKind(AntiJoin)}},
	}
	for _, alg := range []Algorithm{BMPSM, PMPSM} {
		for _, tc := range cases {
			base, err := engine.Join(context.Background(), r, s,
				append([]Option{WithAlgorithm(alg), WithBatchSize(-1)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%v/%s row: %v", alg, tc.name, err)
			}
			res, err := engine.Join(context.Background(), r, s,
				append([]Option{WithAlgorithm(alg), WithBatchSize(4096)}, tc.opts...)...)
			if err != nil {
				t.Fatalf("%v/%s: %v", alg, tc.name, err)
			}
			if res.Batch.Batches != 0 {
				t.Fatalf("%v/%s: ineligible join reported batch traffic %+v", alg, tc.name, res.Batch)
			}
			if res.Matches != base.Matches || res.MaxSum != base.MaxSum {
				t.Fatalf("%v/%s: (matches, maxSum) = (%d, %d), row path (%d, %d)",
					alg, tc.name, res.Matches, res.MaxSum, base.Matches, base.MaxSum)
			}
		}
	}
}
