package mpsm

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/exec"
	"repro/internal/planner"
)

// Explain describes the physical plan the engine would execute for a Plan:
// one entry per plan node with the chosen operators (join algorithm,
// scheduling mode, presorted declarations, aggregation strategy), the
// planner's estimated cardinalities, and — after ExplainAnalyze — the actual
// ones. With auto-planning enabled (WithAutoPlan, as an engine default or a
// per-call option) the description reflects the optimizer's rewrites; without
// it, the configured plan annotated with estimates.
//
// Explain renders human-readably via String and machine-readably via
// MarshalJSON.
type Explain struct {
	// AutoPlan reports whether the description is the optimizer's rewrite.
	AutoPlan bool `json:"auto_plan"`
	// Nodes holds one entry per plan node, in plan construction order (the
	// same order as the Plan builder's handles; join entries line up with
	// PlanResult.Joins).
	Nodes []ExplainNode `json:"nodes"`
}

// ExplainCost is one algorithm's modelled cost for a join node.
type ExplainCost struct {
	Algorithm string  `json:"algorithm"`
	Millis    float64 `json:"millis"`
}

// ExplainNode is the physical description of one plan node.
type ExplainNode struct {
	// ID is the node's index; Inputs are its input node IDs after any
	// optimizer rewrites (join-order changes and build/probe swaps show up
	// here).
	ID     int    `json:"id"`
	Kind   string `json:"kind"`
	Inputs []int  `json:"inputs,omitempty"`
	// Relation names the scanned relation for Scan nodes.
	Relation string `json:"relation,omitempty"`
	// Filter describes a Scan node's selection: the branch-free key range
	// ("key∈[lo,hi)"), an opaque predicate ("pred"), or both. Empty for
	// unfiltered scans.
	Filter string `json:"filter,omitempty"`

	// EstRows is the planner's estimated output cardinality. For join nodes
	// it is the estimated match count even when the join's output is fused
	// into a sink or aggregate rather than materialized.
	EstRows float64 `json:"est_rows"`
	// ActualRows is the observed cardinality, filled in by ExplainAnalyze;
	// -1 when the plan was not executed or the node's output was never
	// counted.
	ActualRows int64 `json:"actual_rows"`
	// EstDistinct and Skew describe the estimated output key distribution.
	EstDistinct float64 `json:"est_distinct,omitempty"`
	Skew        float64 `json:"skew,omitempty"`

	// Join-node decisions.
	Algorithm        string        `json:"algorithm,omitempty"`
	Scheduler        string        `json:"scheduler,omitempty"`
	MorselSize       int           `json:"morsel_size,omitempty"`
	PresortedPrivate bool          `json:"presorted_private,omitempty"`
	PresortedPublic  bool          `json:"presorted_public,omitempty"`
	Swapped          bool          `json:"swapped,omitempty"`
	Reordered        bool          `json:"reordered,omitempty"`
	Costs            []ExplainCost `json:"costs,omitempty"`

	// AggStrategy is the chosen aggregation strategy ("merge", "hash") for
	// GroupAggregate nodes.
	AggStrategy string `json:"agg_strategy,omitempty"`

	// Keys describes the key-schema regime of scans over normalized-key
	// relations and of joins consuming them: prefix width, fast-path vs
	// tie-break choice, and the sampled prefix-collision estimate. Empty
	// for raw uint64 keys. Present with and without auto-planning — the
	// key path is decided by the schema, not the optimizer.
	Keys string `json:"keys,omitempty"`

	// Reason summarizes the planner's rationale; empty without auto-planning.
	Reason string `json:"reason,omitempty"`
}

// Explain returns the physical plan description for p under the engine's
// configuration plus the given per-call options, without executing the plan.
// Estimated cardinalities come from sampled relation statistics (cached on
// the engine); ActualRows is -1 throughout. Enable WithAutoPlan (on the
// engine or per call) to see the cost-based optimizer's choices.
func (e *Engine) Explain(p *Plan, opts ...Option) (*Explain, error) {
	ex, _, err := e.explain(p, opts)
	return ex, err
}

// ExplainAnalyze executes the plan and returns the physical plan description
// with both estimated and actual cardinalities, alongside the execution's
// result. The executed plan is exactly the described one.
func (e *Engine) ExplainAnalyze(ctx context.Context, p *Plan, opts ...Option) (*Explain, *PlanResult, error) {
	ex, ep, err := e.explain(p, opts)
	if err != nil {
		return nil, nil, err
	}
	global := e.resolve(opts)
	pr, err := exec.RunPlan(ctx, ep, e.scratchFor(global))
	if err != nil {
		return nil, nil, err
	}
	res := convertPlanResult(pr)
	for i := range ex.Nodes {
		if rows := pr.Rows[i]; rows >= 0 {
			ex.Nodes[i].ActualRows = int64(rows)
		}
	}
	// Fused joins (feeding a sink or aggregate) never materialize rows; their
	// actual cardinality is the match count.
	for _, j := range pr.Joins {
		node := &ex.Nodes[j.Node]
		if node.ActualRows < 0 {
			node.ActualRows = int64(j.Result.Matches)
		}
	}
	return ex, res, nil
}

// explain lowers, optimizes (or annotates) and describes a plan, returning
// the description and the exec plan it describes.
func (e *Engine) explain(p *Plan, opts []Option) (*Explain, *exec.Plan, error) {
	ep, global, err := e.buildExecPlan(p, opts)
	if err != nil {
		return nil, nil, err
	}
	opt := &planner.Optimizer{Profile: e.profileFor, Rewrite: global.autoPlan}
	optimized, decisions, err := opt.Optimize(ep)
	if err != nil {
		return nil, nil, err
	}
	ex := &Explain{AutoPlan: global.autoPlan}
	for i, d := range decisions {
		n := optimized.Nodes[i]
		en := ExplainNode{
			ID:          int(d.ID),
			Kind:        d.Kind.String(),
			EstRows:     d.EstRows,
			ActualRows:  -1,
			EstDistinct: d.EstDistinct,
			Skew:        d.Skew,
			Keys:        d.Keys,
			Reason:      d.Reason,
		}
		for _, in := range d.Inputs {
			en.Inputs = append(en.Inputs, int(in))
		}
		switch n.Kind {
		case exec.NodeScan:
			if n.Rel != nil {
				en.Relation = n.Rel.Name
			}
			en.Filter = scanFilterDesc(n)
		case exec.NodeJoin:
			en.Algorithm = d.Algorithm.String()
			en.Scheduler = d.Scheduler.String()
			en.MorselSize = d.MorselSize
			en.PresortedPrivate = d.PresortedPrivate
			en.PresortedPublic = d.PresortedPublic
			en.Swapped = d.Swapped
			en.Reordered = d.Reordered
			for _, c := range d.Costs {
				en.Costs = append(en.Costs, ExplainCost{Algorithm: c.Algorithm.String(), Millis: c.Millis})
			}
		case exec.NodeGroupAggregate:
			en.AggStrategy = d.AggMode.String()
		}
		ex.Nodes = append(ex.Nodes, en)
	}
	return ex, optimized, nil
}

// scanFilterDesc summarizes a scan node's selection for Explain.
func scanFilterDesc(n exec.PlanNode) string {
	var parts []string
	if n.Range != nil {
		parts = append(parts, fmt.Sprintf("key∈[%d,%d)", n.Range.Low, n.Range.High))
	}
	if n.Pred != nil {
		parts = append(parts, "pred")
	}
	return strings.Join(parts, ", ")
}

// MarshalJSON renders the description as JSON.
func (ex *Explain) MarshalJSON() ([]byte, error) {
	type alias Explain // avoid recursing into MarshalJSON
	return json.Marshal((*alias)(ex))
}

// String renders the plan as an indented operator tree, root first:
//
//	GroupAggregate [merge] est=65536 actual=65493
//	└─ Join [Radix HJ, static] est=1047113 actual=1048628
//	   ├─ Scan R est=262144
//	   └─ Scan S est=1048576
func (ex *Explain) String() string {
	consumed := make([]bool, len(ex.Nodes))
	for _, n := range ex.Nodes {
		for _, in := range n.Inputs {
			consumed[in] = true
		}
	}
	var b strings.Builder
	first := true
	for id := len(ex.Nodes) - 1; id >= 0; id-- {
		if consumed[id] {
			continue
		}
		if !first {
			b.WriteString("\n")
		}
		first = false
		ex.render(&b, id, "", "", "")
	}
	return b.String()
}

// render writes one node and its subtree.
func (ex *Explain) render(b *strings.Builder, id int, prefix, branch, childPrefix string) {
	n := ex.Nodes[id]
	b.WriteString(prefix + branch + n.describe() + "\n")
	for i, in := range n.Inputs {
		last := i == len(n.Inputs)-1
		nextBranch, nextChild := "├─ ", "│  "
		if last {
			nextBranch, nextChild = "└─ ", "   "
		}
		ex.render(b, in, prefix+childPrefix, nextBranch, nextChild)
	}
}

// describe renders one node line.
func (n ExplainNode) describe() string {
	var b strings.Builder
	b.WriteString(n.Kind)
	if n.Relation != "" {
		b.WriteString(" " + n.Relation)
	}
	var attrs []string
	if n.Filter != "" {
		attrs = append(attrs, n.Filter)
	}
	if n.Algorithm != "" {
		attrs = append(attrs, n.Algorithm)
	}
	if n.Scheduler != "" {
		attrs = append(attrs, n.Scheduler)
	}
	if n.PresortedPrivate {
		attrs = append(attrs, "presorted-private")
	}
	if n.PresortedPublic {
		attrs = append(attrs, "presorted-public")
	}
	if n.Swapped {
		attrs = append(attrs, "swapped")
	}
	if n.Reordered {
		attrs = append(attrs, "reordered")
	}
	if n.AggStrategy != "" && n.AggStrategy != "auto" {
		attrs = append(attrs, n.AggStrategy)
	}
	if n.Keys != "" {
		attrs = append(attrs, n.Keys)
	}
	if len(attrs) > 0 {
		b.WriteString(" [" + strings.Join(attrs, ", ") + "]")
	}
	fmt.Fprintf(&b, " est=%.0f", n.EstRows)
	if n.ActualRows >= 0 {
		fmt.Fprintf(&b, " actual=%d", n.ActualRows)
	}
	if n.Reason != "" {
		b.WriteString("  -- " + n.Reason)
	}
	return b.String()
}
