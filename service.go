package mpsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/service"
)

// Serving errors. ErrBudgetTooLarge, ErrQueueFull and ErrQueueTimeout are the
// admission controller's rejections; ErrServiceClosed reports a query
// submitted after Close.
var (
	ErrBudgetTooLarge = service.ErrBudgetTooLarge
	ErrQueueFull      = service.ErrQueueFull
	ErrQueueTimeout   = service.ErrQueueTimeout
	ErrServiceClosed  = errors.New("mpsm: service is closed")
)

// Retryable reports whether an error is transient pressure — a full or timed
// out admission queue, or an over-committed memory budget — that a client (or
// the service's own degradation ladder) may retry with backoff. Permanent
// rejections (ErrBudgetTooLarge, ErrServiceClosed, validation errors) and
// query failures (PanicError, cancellation) are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrQueueFull) ||
		errors.Is(err, ErrQueueTimeout) ||
		errors.Is(err, memory.ErrOverCommitted)
}

// AdmissionStats are the admission controller's counters.
type AdmissionStats = service.AdmissionStats

// PlanCacheStats are the plan cache's counters.
type PlanCacheStats = service.PlanCacheStats

// ServiceStats snapshots all serving-layer counters at once.
type ServiceStats struct {
	// Admission reports admitted/queued/rejected/canceled queries and the
	// current queue depth.
	Admission AdmissionStats
	// PlanCache reports plan-cache hits, misses, invalidations and
	// evictions.
	PlanCache PlanCacheStats
	// Memory is the scratch pool's snapshot, including the per-query
	// reserved and in-use attribution of every active query.
	Memory PoolStats
	// Active is the number of queries currently executing (admitted, not
	// yet completed).
	Active int64
	// Degradation counts the graceful-degradation ladder's interventions
	// and the failures the service absorbed.
	Degradation DegradationStats
}

// DegradationStats count the service's graceful-degradation events.
type DegradationStats struct {
	// AdmissionRetries counts admission attempts beyond each query's first
	// (the degradation ladder re-queueing with backoff).
	AdmissionRetries uint64
	// BudgetShrinks counts budget halvings taken by the ladder before
	// re-attempting admission.
	BudgetShrinks uint64
	// NarrowedQueries counts queries that executed with degraded
	// parallelism/batch size after retried admission.
	NarrowedQueries uint64
	// DeadlineExpired counts queries aborted by their execution deadline.
	DeadlineExpired uint64
	// PanicsRecovered counts queries that failed with a recovered
	// PanicError while the service carried on.
	PanicsRecovered uint64
}

// degCounters is the internal atomic mirror of DegradationStats.
type degCounters struct {
	admissionRetries atomic.Uint64
	budgetShrinks    atomic.Uint64
	narrowed         atomic.Uint64
	deadlineExpired  atomic.Uint64
	panicsRecovered  atomic.Uint64
}

// snapshot converts the counters into their public form.
func (d *degCounters) snapshot() DegradationStats {
	return DegradationStats{
		AdmissionRetries: d.admissionRetries.Load(),
		BudgetShrinks:    d.budgetShrinks.Load(),
		NarrowedQueries:  d.narrowed.Load(),
		DeadlineExpired:  d.deadlineExpired.Load(),
		PanicsRecovered:  d.panicsRecovered.Load(),
	}
}

// serviceConfig collects the ServiceOption knobs.
type serviceConfig struct {
	maxMemory       int64
	queueLimit      int
	queueTimeout    time.Duration
	fairSlots       int
	planCacheSize   int
	defaultBudget   int64
	execDeadline    time.Duration
	degradeSteps    int
	degradeStepsSet bool
	faults          *faultinject.Set
}

// ServiceOption configures a Service at construction.
type ServiceOption func(*serviceConfig)

// WithMaxMemory caps the total bytes concurrently admitted queries may
// reserve (the engine-wide memory limit admission control enforces); 0
// selects the scratch pool's parked-byte limit (512 MiB by default).
func WithMaxMemory(bytes int64) ServiceOption {
	return func(c *serviceConfig) { c.maxMemory = bytes }
}

// WithAdmissionQueue bounds the admission queue: at most limit queries wait
// (0 = unbounded), each for at most timeout (0 = only the query's own
// context). Queries beyond the limit are rejected with ErrQueueFull; queries
// whose wait exceeds the timeout fail with ErrQueueTimeout.
func WithAdmissionQueue(limit int, timeout time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.queueLimit = limit; c.queueTimeout = timeout }
}

// WithFairSlots sets the number of concurrent execution slots the fair-share
// scheduler arbitrates (the machine's effective parallelism); 0 selects
// GOMAXPROCS.
func WithFairSlots(n int) ServiceOption {
	return func(c *serviceConfig) { c.fairSlots = n }
}

// WithPlanCacheSize bounds the number of cached physical plans; 0 selects the
// default (256).
func WithPlanCacheSize(n int) ServiceOption {
	return func(c *serviceConfig) { c.planCacheSize = n }
}

// WithDefaultBudget sets the per-query memory budget assumed when a query
// does not declare one with WithQueryBudget; 0 derives the budget from the
// query's input sizes.
func WithDefaultBudget(bytes int64) ServiceOption {
	return func(c *serviceConfig) { c.defaultBudget = bytes }
}

// WithExecDeadline bounds every query's execution time (admission wait
// excluded), enforced at phase boundaries and chunk granularity like any
// context deadline; expired queries fail with context.DeadlineExceeded and
// count in DegradationStats.DeadlineExpired. Per-query WithQueryDeadline
// overrides it; 0 (the default) sets no deadline.
func WithExecDeadline(d time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.execDeadline = d }
}

// WithDegradationSteps sets how many times the degradation ladder re-attempts
// admission for one query under transient pressure — each retry backs off,
// halves the query's budget (floored at 1 MiB) and narrows its parallelism —
// before the rejection surfaces to the caller. 0 disables the ladder
// (immediate hard rejection, the pre-degradation behaviour); the default is 2.
func WithDegradationSteps(n int) ServiceOption {
	return func(c *serviceConfig) {
		if n < 0 {
			n = 0
		}
		c.degradeSteps = n
		c.degradeStepsSet = true
	}
}

// WithServiceFaults arms service-wide deterministic fault injection: the
// admission controller's GrantRace point, per-query CancelStorm, and — unless
// a query overrides with its own WithFaultInjection — the engine-side points
// of every query the service runs. Nil (the default) injects nothing. See
// internal/faultinject for the points and NewFaultSet/ParseFaultSpec for
// construction.
func WithServiceFaults(f *FaultSet) ServiceOption {
	return func(c *serviceConfig) { c.faults = f }
}

// queryConfig collects the per-query QueryOption knobs.
type queryConfig struct {
	weight     int
	budget     int64
	label      string
	deadline   time.Duration
	engineOpts []Option
}

// QueryOption configures one query submitted to a Service.
type QueryOption func(*queryConfig)

// WithQueryWeight sets the query's fair-share weight (default 1): under
// contention a weight-2 query receives twice the busy slot time of a
// weight-1 query.
func WithQueryWeight(w int) QueryOption {
	return func(c *queryConfig) { c.weight = w }
}

// WithQueryBudget declares the query's memory budget in bytes for admission
// control; 0 derives it from the input sizes. Budgets larger than the
// service's memory limit are rejected with ErrBudgetTooLarge.
func WithQueryBudget(bytes int64) QueryOption {
	return func(c *queryConfig) { c.budget = bytes }
}

// WithQueryLabel names the query in ServiceStats.Memory.Queries; unnamed
// queries get a generated "q<N>" label.
func WithQueryLabel(label string) QueryOption {
	return func(c *queryConfig) { c.label = label }
}

// WithQueryOptions passes per-call engine options (algorithm, workers, sink,
// ...) through to the query's execution, exactly like the opts parameter of
// Engine.Join.
func WithQueryOptions(opts ...Option) QueryOption {
	return func(c *queryConfig) { c.engineOpts = append(c.engineOpts, opts...) }
}

// WithQueryDeadline bounds this query's execution time (admission wait
// excluded), overriding the service-wide WithExecDeadline; 0 keeps the
// service default.
func WithQueryDeadline(d time.Duration) QueryOption {
	return func(c *queryConfig) { c.deadline = d }
}

// Service is the multi-tenant serving layer over one Engine: every query is
// admission-controlled against a shared memory limit (queueing FIFO with an
// optional deadline when the limit is reached, rejecting what could never
// fit), scheduled through a weighted fair-share arbiter so concurrent
// queries interleave at morsel granularity instead of monopolizing the
// workers FIFO-style, and planned through a normalized plan cache that
// reuses physical plans across queries of the same shape, statistics and
// configuration.
//
// A Service is safe for concurrent use from any number of client
// goroutines; that is its purpose.
type Service struct {
	engine *Engine
	pool   *memory.Pool
	adm    *service.Admission
	fs     *sched.FairShare
	cache  *service.PlanCache

	defaultBudget int64
	execDeadline  time.Duration
	degradeSteps  int
	faults        *faultinject.Set
	nextID        atomic.Uint64
	active        atomic.Int64
	deg           degCounters

	mu       sync.Mutex
	closed   bool
	inflight int
	drained  *sync.Cond // signaled when inflight reaches 0, for Close
}

// NewService wraps an engine in a serving layer. When the engine has a
// scratch pool (WithScratchPool), admission budgets are carved out of that
// pool and the per-query attribution shows up in its PoolStats; otherwise
// the service creates an accounting-only pool to track reservations.
// Queries default to the Morsel scheduler — the granularity fair-share
// interleaving needs — and to an elastic worker count (all fair-share slots
// when the service is idle, down to one worker per query under fan-in);
// WithQueryOptions(WithScheduler(Static)) and WithQueryOptions(WithWorkers(n))
// override either per query.
func NewService(e *Engine, opts ...ServiceOption) *Service {
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	pool := e.pool
	if pool == nil {
		pool = memory.NewPool(cfg.maxMemory)
	}
	if cfg.maxMemory > 0 {
		pool.SetReserveLimit(cfg.maxMemory)
	}
	adm := service.NewAdmission(pool)
	adm.MaxQueue = cfg.queueLimit
	adm.Timeout = cfg.queueTimeout
	adm.Faults = cfg.faults
	if !cfg.degradeStepsSet {
		cfg.degradeSteps = defaultDegradeSteps
	}
	s := &Service{
		engine:        e,
		pool:          pool,
		adm:           adm,
		fs:            sched.NewFairShare(cfg.fairSlots),
		cache:         service.NewPlanCache(e.profileFor, cfg.planCacheSize),
		defaultBudget: cfg.defaultBudget,
		execDeadline:  cfg.execDeadline,
		degradeSteps:  cfg.degradeSteps,
		faults:        cfg.faults,
	}
	s.drained = sync.NewCond(&s.mu)
	return s
}

// Close marks the service closed and drains: subsequent queries fail with
// ErrServiceClosed, while queries already submitted — executing or still
// waiting in the admission queue — finish normally before Close returns.
// Close is idempotent and safe to call concurrently with in-flight Join and
// RunPlan calls (and with other Close calls); every call blocks until the
// service is drained.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for s.inflight > 0 {
		s.drained.Wait()
	}
	return nil
}

// beginQuery registers a query as in-flight; it fails once the service is
// closed. Every successful begin must be paired with endQuery.
func (s *Service) beginQuery() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrServiceClosed
	}
	s.inflight++
	return nil
}

// endQuery retires an in-flight query and wakes Close when the last one
// finishes.
func (s *Service) endQuery() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 {
		s.drained.Broadcast()
	}
	s.mu.Unlock()
}

// Stats snapshots the serving-layer counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Admission:   s.adm.Stats(),
		PlanCache:   s.cache.Stats(),
		Memory:      s.pool.Stats(),
		Active:      s.active.Load(),
		Degradation: s.deg.snapshot(),
	}
}

// Join executes an equi-join between the private input r and the public
// input p through the serving layer: admission control, fair-share
// scheduling, and the plan cache (which, when the engine auto-plans, reuses
// the planner's physical decisions across repeated joins of the same shape).
// It is Engine.Join behind the serving layer; see there for the join
// semantics.
func (s *Service) Join(ctx context.Context, r, p *Relation, opts ...QueryOption) (*Result, error) {
	if r == nil || p == nil {
		return nil, fmt.Errorf("mpsm: Join requires non-nil relations")
	}
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	resolvedSink := s.engine.resolve(q.engineOpts).sink
	plan := NewPlan()
	rs := plan.Scan(r)
	ps := plan.Scan(p)
	j := plan.Join(rs, ps)
	plan.Sink(j, resolvedSink)

	pr, err := s.run(ctx, plan, q, r.Len()+p.Len())
	if err != nil {
		return nil, err
	}
	return pr.Joins[0].Result, nil
}

// RunPlan executes a plan through the serving layer; see Engine.RunPlan for
// plan semantics.
func (s *Service) RunPlan(ctx context.Context, p *Plan, opts ...QueryOption) (*PlanResult, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	rows := 0
	if p != nil {
		for _, n := range p.nodes {
			if n.rel != nil {
				rows += n.rel.Len()
			}
		}
	}
	return s.run(ctx, p, q, rows)
}

// Explain renders the physical plan the underlying engine would execute for
// p, without running it. Per-query engine options (WithQueryOptions) apply;
// serving-layer options are irrelevant to planning and ignored.
func (s *Service) Explain(p *Plan, opts ...QueryOption) (*Explain, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	return s.engine.Explain(p, q.engineOpts...)
}

// budgetFor resolves a query's admission budget: the declared one, the
// service default, or an estimate from the input cardinality (the MPSM runs
// copy both inputs once and the partition phase copies the private one
// again, so ~3 tuple copies plus histogram overhead bounds the scratch
// demand).
func (s *Service) budgetFor(q queryConfig, inputRows int) int64 {
	if q.budget > 0 {
		return q.budget
	}
	if s.defaultBudget > 0 {
		return s.defaultBudget
	}
	const tupleBytes = 16
	b := int64(inputRows) * tupleBytes * 3
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// run is the shared serving path: admit, gate, plan through the cache,
// execute, release.
// Degradation-ladder constants: a degraded query's budget never shrinks
// below minDegradedBudget, admission retries back off starting at
// degradeBackoff (doubling, capped at degradeBackoffMax), and degraded
// queries run with degradedBatchSize-tuple batches to bound the memory each
// worker holds between checkpoints.
const (
	defaultDegradeSteps = 2
	minDegradedBudget   = 1 << 20 // 1 MiB
	degradeBackoff      = 500 * time.Microsecond
	degradeBackoffMax   = 4 * time.Millisecond
	degradedBatchSize   = 256
)

// admit runs the graceful-degradation ladder in front of the admission
// controller: on transient pressure (Retryable errors — queue full, queue
// timeout, over-committed budget) it retries admission up to s.degradeSteps
// times, each time backing off and halving the requested budget (floored at
// minDegradedBudget). It returns the granted reservation together with the
// number of degradation steps taken, so the caller can narrow the query's
// parallelism to match its shrunken budget. Non-retryable errors and
// exhausted ladders surface immediately.
func (s *Service) admit(ctx context.Context, label string, budget int64) (*memory.Reservation, int, error) {
	backoff := degradeBackoff
	for step := 0; ; step++ {
		res, err := s.adm.Admit(ctx, label, budget)
		if err == nil {
			return res, step, nil
		}
		if step >= s.degradeSteps || !Retryable(err) || ctx.Err() != nil {
			return nil, step, err
		}
		s.deg.admissionRetries.Add(1)
		if half := budget / 2; half >= minDegradedBudget {
			budget = half
			s.deg.budgetShrinks.Add(1)
		} else if budget > minDegradedBudget {
			budget = minDegradedBudget
			s.deg.budgetShrinks.Add(1)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, step, ctx.Err()
		}
		if backoff *= 2; backoff > degradeBackoffMax {
			backoff = degradeBackoffMax
		}
	}
}

func (s *Service) run(ctx context.Context, p *Plan, q queryConfig, inputRows int) (*PlanResult, error) {
	if err := s.beginQuery(); err != nil {
		return nil, err
	}
	defer s.endQuery()

	label := q.label
	if label == "" {
		label = fmt.Sprintf("q%d", s.nextID.Add(1))
	}

	// CancelStorm injection: abort this query's context shortly after it
	// enters the service, exercising the cancellation paths under load.
	if s.faults.Should(faultinject.CancelStorm) {
		stormCtx, cancel := context.WithCancel(ctx)
		timer := time.AfterFunc(s.faults.Delay(faultinject.CancelStorm), cancel)
		defer timer.Stop()
		defer cancel()
		ctx = stormCtx
	}

	res, degraded, err := s.admit(ctx, label, s.budgetFor(q, inputRows))
	if err != nil {
		return nil, err
	}
	defer s.adm.Done(res)
	s.active.Add(1)
	defer s.active.Add(-1)

	// Execution deadline (admission wait excluded): per-query override
	// first, service-wide default otherwise.
	deadline := q.deadline
	if deadline == 0 {
		deadline = s.execDeadline
	}
	if deadline > 0 {
		dctx, cancel := context.WithTimeout(ctx, deadline)
		defer cancel()
		ctx = dctx
	}

	ticket := s.fs.Ticket(q.weight)
	// Elastic degree of parallelism: a lone query fans out across every
	// fair-share slot, a saturated service runs each query narrow — one
	// worker per query costs the least total work (no partition/barrier
	// overhead), and the slots stay busy because many queries run at once.
	// Aggregate throughput under fan-in therefore exceeds solo throughput,
	// which is what keeps the tail latency of a closed-loop client pool
	// within a small multiple of the uncontended latency.
	dop := s.fs.Slots() / int(s.active.Load())
	if dop < 1 {
		dop = 1
	}
	// The serving defaults go first so per-query options can override them
	// (an explicit WithWorkers in WithQueryOptions wins over the elastic
	// choice, WithScheduler(Static) over the Morsel default).
	defaults := []Option{WithScheduler(Morsel), WithWorkers(dop)}
	if degraded > 0 {
		// A query admitted through the degradation ladder runs on a
		// fraction of its requested budget: narrow its parallelism to
		// match (each step halves the worker count) and shrink its batch
		// size so less memory sits in flight between checkpoints.
		ndop := dop >> degraded
		if ndop < 1 {
			ndop = 1
		}
		defaults = append(defaults, WithWorkers(ndop), WithBatchSize(degradedBatchSize))
		s.deg.narrowed.Add(1)
	}
	if s.faults != nil {
		defaults = append(defaults, WithFaultInjection(s.faults))
	}
	opts := append(defaults, q.engineOpts...)
	opts = append(opts, withGate(ticket), withOwner(res))

	pr, err := s.execute(ctx, p, opts, res)
	if err != nil {
		var pe *sched.PanicError
		if errors.As(err, &pe) {
			s.deg.panicsRecovered.Add(1)
		}
		if errors.Is(err, context.DeadlineExceeded) {
			s.deg.deadlineExpired.Add(1)
		}
		return nil, err
	}
	return pr, nil
}

// execute builds, optimizes and runs the plan with the resolved options,
// attributing the plan-level lease to the query's admission reservation.
func (s *Service) execute(ctx context.Context, p *Plan, opts []Option, res *memory.Reservation) (*PlanResult, error) {
	ep, g, err := s.engine.buildExecPlan(p, opts)
	if err != nil {
		return nil, err
	}
	if p.info != nil {
		// Compiled queries cache by their canonical text: equivalent
		// spellings share one entry, and the per-relation fingerprints still
		// invalidate it when the underlying data changes.
		ep, err = s.cache.OptimizeKeyed(p.info.Text, ep, g.autoPlan)
	} else {
		ep, err = s.cache.Optimize(ep, g.autoPlan)
	}
	if err != nil {
		return nil, err
	}
	pr, err := exec.RunPlanFor(ctx, ep, s.engine.scratchFor(g), res)
	if err != nil {
		return nil, err
	}
	return convertPlanResult(pr), nil
}
