package mpsm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/sched"
	"repro/internal/service"
)

// Serving errors. ErrBudgetTooLarge, ErrQueueFull and ErrQueueTimeout are the
// admission controller's rejections; ErrServiceClosed reports a query
// submitted after Close.
var (
	ErrBudgetTooLarge = service.ErrBudgetTooLarge
	ErrQueueFull      = service.ErrQueueFull
	ErrQueueTimeout   = service.ErrQueueTimeout
	ErrServiceClosed  = errors.New("mpsm: service is closed")
)

// AdmissionStats are the admission controller's counters.
type AdmissionStats = service.AdmissionStats

// PlanCacheStats are the plan cache's counters.
type PlanCacheStats = service.PlanCacheStats

// ServiceStats snapshots all serving-layer counters at once.
type ServiceStats struct {
	// Admission reports admitted/queued/rejected/canceled queries and the
	// current queue depth.
	Admission AdmissionStats
	// PlanCache reports plan-cache hits, misses, invalidations and
	// evictions.
	PlanCache PlanCacheStats
	// Memory is the scratch pool's snapshot, including the per-query
	// reserved and in-use attribution of every active query.
	Memory PoolStats
	// Active is the number of queries currently executing (admitted, not
	// yet completed).
	Active int64
}

// serviceConfig collects the ServiceOption knobs.
type serviceConfig struct {
	maxMemory     int64
	queueLimit    int
	queueTimeout  time.Duration
	fairSlots     int
	planCacheSize int
	defaultBudget int64
}

// ServiceOption configures a Service at construction.
type ServiceOption func(*serviceConfig)

// WithMaxMemory caps the total bytes concurrently admitted queries may
// reserve (the engine-wide memory limit admission control enforces); 0
// selects the scratch pool's parked-byte limit (512 MiB by default).
func WithMaxMemory(bytes int64) ServiceOption {
	return func(c *serviceConfig) { c.maxMemory = bytes }
}

// WithAdmissionQueue bounds the admission queue: at most limit queries wait
// (0 = unbounded), each for at most timeout (0 = only the query's own
// context). Queries beyond the limit are rejected with ErrQueueFull; queries
// whose wait exceeds the timeout fail with ErrQueueTimeout.
func WithAdmissionQueue(limit int, timeout time.Duration) ServiceOption {
	return func(c *serviceConfig) { c.queueLimit = limit; c.queueTimeout = timeout }
}

// WithFairSlots sets the number of concurrent execution slots the fair-share
// scheduler arbitrates (the machine's effective parallelism); 0 selects
// GOMAXPROCS.
func WithFairSlots(n int) ServiceOption {
	return func(c *serviceConfig) { c.fairSlots = n }
}

// WithPlanCacheSize bounds the number of cached physical plans; 0 selects the
// default (256).
func WithPlanCacheSize(n int) ServiceOption {
	return func(c *serviceConfig) { c.planCacheSize = n }
}

// WithDefaultBudget sets the per-query memory budget assumed when a query
// does not declare one with WithQueryBudget; 0 derives the budget from the
// query's input sizes.
func WithDefaultBudget(bytes int64) ServiceOption {
	return func(c *serviceConfig) { c.defaultBudget = bytes }
}

// queryConfig collects the per-query QueryOption knobs.
type queryConfig struct {
	weight     int
	budget     int64
	label      string
	engineOpts []Option
}

// QueryOption configures one query submitted to a Service.
type QueryOption func(*queryConfig)

// WithQueryWeight sets the query's fair-share weight (default 1): under
// contention a weight-2 query receives twice the busy slot time of a
// weight-1 query.
func WithQueryWeight(w int) QueryOption {
	return func(c *queryConfig) { c.weight = w }
}

// WithQueryBudget declares the query's memory budget in bytes for admission
// control; 0 derives it from the input sizes. Budgets larger than the
// service's memory limit are rejected with ErrBudgetTooLarge.
func WithQueryBudget(bytes int64) QueryOption {
	return func(c *queryConfig) { c.budget = bytes }
}

// WithQueryLabel names the query in ServiceStats.Memory.Queries; unnamed
// queries get a generated "q<N>" label.
func WithQueryLabel(label string) QueryOption {
	return func(c *queryConfig) { c.label = label }
}

// WithQueryOptions passes per-call engine options (algorithm, workers, sink,
// ...) through to the query's execution, exactly like the opts parameter of
// Engine.Join.
func WithQueryOptions(opts ...Option) QueryOption {
	return func(c *queryConfig) { c.engineOpts = append(c.engineOpts, opts...) }
}

// Service is the multi-tenant serving layer over one Engine: every query is
// admission-controlled against a shared memory limit (queueing FIFO with an
// optional deadline when the limit is reached, rejecting what could never
// fit), scheduled through a weighted fair-share arbiter so concurrent
// queries interleave at morsel granularity instead of monopolizing the
// workers FIFO-style, and planned through a normalized plan cache that
// reuses physical plans across queries of the same shape, statistics and
// configuration.
//
// A Service is safe for concurrent use from any number of client
// goroutines; that is its purpose.
type Service struct {
	engine *Engine
	pool   *memory.Pool
	adm    *service.Admission
	fs     *sched.FairShare
	cache  *service.PlanCache

	defaultBudget int64
	nextID        atomic.Uint64
	active        atomic.Int64

	mu     sync.Mutex
	closed bool
}

// NewService wraps an engine in a serving layer. When the engine has a
// scratch pool (WithScratchPool), admission budgets are carved out of that
// pool and the per-query attribution shows up in its PoolStats; otherwise
// the service creates an accounting-only pool to track reservations.
// Queries default to the Morsel scheduler — the granularity fair-share
// interleaving needs — and to an elastic worker count (all fair-share slots
// when the service is idle, down to one worker per query under fan-in);
// WithQueryOptions(WithScheduler(Static)) and WithQueryOptions(WithWorkers(n))
// override either per query.
func NewService(e *Engine, opts ...ServiceOption) *Service {
	var cfg serviceConfig
	for _, o := range opts {
		o(&cfg)
	}
	pool := e.pool
	if pool == nil {
		pool = memory.NewPool(cfg.maxMemory)
	}
	if cfg.maxMemory > 0 {
		pool.SetReserveLimit(cfg.maxMemory)
	}
	adm := service.NewAdmission(pool)
	adm.MaxQueue = cfg.queueLimit
	adm.Timeout = cfg.queueTimeout
	return &Service{
		engine:        e,
		pool:          pool,
		adm:           adm,
		fs:            sched.NewFairShare(cfg.fairSlots),
		cache:         service.NewPlanCache(e.profileFor, cfg.planCacheSize),
		defaultBudget: cfg.defaultBudget,
	}
}

// Close marks the service closed; subsequent queries fail with
// ErrServiceClosed. In-flight queries finish normally.
func (s *Service) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Stats snapshots the serving-layer counters.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		Admission: s.adm.Stats(),
		PlanCache: s.cache.Stats(),
		Memory:    s.pool.Stats(),
		Active:    s.active.Load(),
	}
}

// Join executes an equi-join between the private input r and the public
// input p through the serving layer: admission control, fair-share
// scheduling, and the plan cache (which, when the engine auto-plans, reuses
// the planner's physical decisions across repeated joins of the same shape).
// It is Engine.Join behind the serving layer; see there for the join
// semantics.
func (s *Service) Join(ctx context.Context, r, p *Relation, opts ...QueryOption) (*Result, error) {
	if r == nil || p == nil {
		return nil, fmt.Errorf("mpsm: Join requires non-nil relations")
	}
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	resolvedSink := s.engine.resolve(q.engineOpts).sink
	plan := NewPlan()
	rs := plan.Scan(r)
	ps := plan.Scan(p)
	j := plan.Join(rs, ps)
	plan.Sink(j, resolvedSink)

	pr, err := s.run(ctx, plan, q, r.Len()+p.Len())
	if err != nil {
		return nil, err
	}
	return pr.Joins[0].Result, nil
}

// RunPlan executes a plan through the serving layer; see Engine.RunPlan for
// plan semantics.
func (s *Service) RunPlan(ctx context.Context, p *Plan, opts ...QueryOption) (*PlanResult, error) {
	var q queryConfig
	for _, o := range opts {
		o(&q)
	}
	rows := 0
	if p != nil {
		for _, n := range p.nodes {
			if n.rel != nil {
				rows += n.rel.Len()
			}
		}
	}
	return s.run(ctx, p, q, rows)
}

// budgetFor resolves a query's admission budget: the declared one, the
// service default, or an estimate from the input cardinality (the MPSM runs
// copy both inputs once and the partition phase copies the private one
// again, so ~3 tuple copies plus histogram overhead bounds the scratch
// demand).
func (s *Service) budgetFor(q queryConfig, inputRows int) int64 {
	if q.budget > 0 {
		return q.budget
	}
	if s.defaultBudget > 0 {
		return s.defaultBudget
	}
	const tupleBytes = 16
	b := int64(inputRows) * tupleBytes * 3
	if b < 1<<20 {
		b = 1 << 20
	}
	return b
}

// run is the shared serving path: admit, gate, plan through the cache,
// execute, release.
func (s *Service) run(ctx context.Context, p *Plan, q queryConfig, inputRows int) (*PlanResult, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrServiceClosed
	}
	s.mu.Unlock()

	label := q.label
	if label == "" {
		label = fmt.Sprintf("q%d", s.nextID.Add(1))
	}
	res, err := s.adm.Admit(ctx, label, s.budgetFor(q, inputRows))
	if err != nil {
		return nil, err
	}
	defer s.adm.Done(res)
	s.active.Add(1)
	defer s.active.Add(-1)

	ticket := s.fs.Ticket(q.weight)
	// Elastic degree of parallelism: a lone query fans out across every
	// fair-share slot, a saturated service runs each query narrow — one
	// worker per query costs the least total work (no partition/barrier
	// overhead), and the slots stay busy because many queries run at once.
	// Aggregate throughput under fan-in therefore exceeds solo throughput,
	// which is what keeps the tail latency of a closed-loop client pool
	// within a small multiple of the uncontended latency.
	dop := s.fs.Slots() / int(s.active.Load())
	if dop < 1 {
		dop = 1
	}
	// The serving defaults go first so per-query options can override them
	// (an explicit WithWorkers in WithQueryOptions wins over the elastic
	// choice, WithScheduler(Static) over the Morsel default).
	opts := append([]Option{WithScheduler(Morsel), WithWorkers(dop)}, q.engineOpts...)
	opts = append(opts, withGate(ticket), withOwner(res))

	ep, global, err := s.engine.buildExecPlan(p, opts)
	if err != nil {
		return nil, err
	}
	ep, err = s.cache.Optimize(ep, global.autoPlan)
	if err != nil {
		return nil, err
	}
	pr, err := exec.RunPlanFor(ctx, ep, s.engine.scratchFor(global), res)
	if err != nil {
		return nil, err
	}
	return convertPlanResult(pr), nil
}
