package mpsm

import (
	"context"
	"fmt"

	"repro/internal/query"
	"repro/internal/relation"
)

// QueryError is a positioned query compilation error: lexical, syntactic or
// semantic. Its Pos carries the 1-based line and column of the offending
// token, Error renders "line:col: message", and Annotate renders the message
// together with the source line and a caret under the offending column.
type QueryError = query.Error

// QueryPos locates a token in query source text.
type QueryPos = query.Pos

// Catalog resolves the relation names a query's patterns refer to.
type Catalog interface {
	// Relation returns the named relation, or false when the name is not
	// bound.
	Relation(name string) (*Relation, bool)
}

// MapCatalog is the simplest Catalog: a name-to-relation map.
type MapCatalog map[string]*Relation

// Relation looks the name up in the map.
func (m MapCatalog) Relation(name string) (*Relation, bool) {
	rel, ok := m[name]
	return rel, ok
}

// Compile parses a Datalog-style query and compiles it into a Plan over the
// catalog's relations. The query is one non-recursive rule,
//
//	ans(K, Sum) :- r(K, X), s(K, Y), X > 10, agg sum(Y).
//
// whose body patterns r(Key, Payload) scan catalog relations, shared key
// variables become equi-joins (a |X - Y| <= c clause a band join),
// comparisons become scan filters — fully bounded key comparisons fold into
// branch-free key-range scans — and an agg clause groups the result by key.
// See the README's "Query language" section for the grammar.
//
// The compiled Plan runs through Engine.RunPlan, Engine.Explain or
// Service.RunPlan like a hand-built one: it inherits auto-planning, EXPLAIN,
// fair-share scheduling and the plan cache (keyed by the canonical query
// text, exposed via Plan.QueryInfo). Errors are *QueryError values carrying
// the source position of the offending token or clause.
func Compile(src string, cat Catalog) (*Plan, error) {
	if cat == nil {
		return nil, fmt.Errorf("mpsm: Compile requires a catalog")
	}
	c, err := query.Compile(src, func(name string) (*relation.Relation, bool) {
		return cat.Relation(name)
	})
	if err != nil {
		return nil, err
	}
	return lowerCompiled(c)
}

// Query compiles and runs a query in one call; see Compile for the language
// and Engine.RunPlan for execution semantics.
func (e *Engine) Query(ctx context.Context, src string, cat Catalog, opts ...Option) (*PlanResult, error) {
	p, err := Compile(src, cat)
	if err != nil {
		return nil, err
	}
	return e.RunPlan(ctx, p, opts...)
}

// Query compiles and runs a query through the serving layer — admission
// control, fair-share scheduling, and the plan cache keyed by the canonical
// query text, so differently spelled but equivalent queries share one cached
// physical plan. See Compile for the language.
func (s *Service) Query(ctx context.Context, src string, cat Catalog, opts ...QueryOption) (*PlanResult, error) {
	p, err := Compile(src, cat)
	if err != nil {
		return nil, err
	}
	return s.RunPlan(ctx, p, opts...)
}

// lowerCompiled lowers the compiler's logical operator list onto the public
// plan builder, whose node semantics (build/probe projection sides,
// key-as-value maps, streaming aggregation) the IR mirrors one-to-one.
func lowerCompiled(c *query.Compiled) (*Plan, error) {
	p := NewPlan()
	nodes := make([]PlanNode, len(c.Ops))
	for i, op := range c.Ops {
		switch op.Kind {
		case query.OpScan:
			pred := cmpPredicate(op.Cmps)
			switch {
			case op.Range != nil && pred != nil:
				nodes[i] = p.ScanRange(op.Rel, op.Range.Low, op.Range.High, pred)
			case op.Range != nil:
				nodes[i] = p.ScanRange(op.Rel, op.Range.Low, op.Range.High)
			case pred != nil:
				nodes[i] = p.Scan(op.Rel, pred)
			default:
				nodes[i] = p.Scan(op.Rel)
			}
		case query.OpJoin:
			if op.Band > 0 {
				nodes[i] = p.Join(nodes[op.Left], nodes[op.Right], WithBandWidth(op.Band))
			} else {
				nodes[i] = p.Join(nodes[op.Left], nodes[op.Right])
			}
		case query.OpProject:
			nodes[i] = p.Project(nodes[op.Input], pairProjection(op.ProbeSide, op.KeyValue))
		case query.OpMap:
			nodes[i] = p.Map(nodes[op.Input], keyAsPayload)
		case query.OpAggregate:
			nodes[i] = p.GroupAggregate(nodes[op.Input], aggOf(op.Agg))
		default:
			return nil, fmt.Errorf("mpsm: compiled query has unknown op kind %v", op.Kind)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	p.info = &QueryInfo{Text: c.Text, Head: c.HeadName, Columns: c.Columns}
	return p, nil
}

// cmpPredicate closes a scan's residual comparisons into one predicate; nil
// when there are none.
func cmpPredicate(cmps []query.Cmp) func(Tuple) bool {
	if len(cmps) == 0 {
		return nil
	}
	cs := append([]query.Cmp(nil), cmps...)
	return func(t Tuple) bool {
		for _, c := range cs {
			v := t.Payload
			if c.OnKey {
				v = t.Key
			}
			if !c.Op.Eval(v, c.Const) {
				return false
			}
		}
		return true
	}
}

// Pair projections of compiled queries. r is the build-side tuple, s the
// probe-side tuple; the output key is always the build key (the join's output
// key). Explicit projections pin the optimizer's build/probe choice for the
// projected join, so the addressed side stays the addressed side under
// auto-planning.
func projectBuild(r, _ Tuple) Tuple { return r }
func projectProbe(r, s Tuple) Tuple { return Tuple{Key: r.Key, Payload: s.Payload} }
func projectKey(r, _ Tuple) Tuple   { return Tuple{Key: r.Key, Payload: r.Key} }
func projectKeyOf(r, s Tuple) Tuple { return Tuple{Key: r.Key, Payload: s.Key} }
func keyAsPayload(t Tuple) Tuple    { return Tuple{Key: t.Key, Payload: t.Key} }

// pairProjection picks the projection function for an OpProject.
func pairProjection(probeSide, keyValue bool) func(r, s Tuple) Tuple {
	switch {
	case keyValue && probeSide:
		return projectKeyOf
	case keyValue:
		return projectKey
	case probeSide:
		return projectProbe
	default:
		return projectBuild
	}
}

// aggOf maps the query aggregate onto the sink aggregate.
func aggOf(f query.AggFunc) Agg {
	switch f {
	case query.AggSum:
		return AggSum
	case query.AggMin:
		return AggMin
	case query.AggMax:
		return AggMax
	default:
		return AggCount
	}
}
