// Package mpsm is a Go implementation of the massively parallel sort-merge
// (MPSM) join algorithms of Albutiu, Kemper and Neumann, "Massively Parallel
// Sort-Merge Joins in Main Memory Multi-Core Database Systems" (VLDB 2012),
// together with the substrates the paper builds on and the baselines it
// compares against.
//
// The package exposes:
//
//   - the three MPSM variants: B-MPSM (basic, skew-immune), P-MPSM
//     (range-partitioned with histogram/CDF-based load balancing — the
//     paper's main contribution) and D-MPSM (disk-enabled, memory
//     constrained);
//   - two hash-join baselines: the "Wisconsin" no-partitioning shared hash
//     join and a radix-partitioned hash join in the MonetDB/Vectorwise
//     lineage;
//   - a workload generator reproducing the paper's evaluation datasets
//     (uniform, 80:20 skew, negatively correlated skew, location skew,
//     multiplicities 1–16);
//   - a simulated NUMA model that classifies memory accesses and prices them
//     with a calibrated cost model, substituting for hardware NUMA control
//     that Go does not expose.
//
// # The Engine API
//
// An Engine is constructed once with functional options and then runs any
// number of joins; it is safe for concurrent use:
//
//	engine := mpsm.New(mpsm.WithWorkers(8), mpsm.WithNUMATracking())
//	res, err := engine.Join(ctx, r, s)                      // max-sum aggregate
//	res, err = engine.Join(ctx, r, s, mpsm.WithAlgorithm(mpsm.BMPSM))
//
// Every join streams its matching (r, s) pairs into a Sink. The default sink
// reproduces the paper's evaluation query max(R.payload + S.payload); the
// other built-ins materialize, count, or keep the top-k pairs:
//
//	top := mpsm.NewTopKSink(10)
//	_, err := engine.Join(ctx, r, s, mpsm.WithSink(top))
//	for _, p := range top.Top() { ... }
//
// JoinStream exposes the same stream as a range-over-func iterator:
//
//	seq, errf := engine.JoinStream(ctx, r, s)
//	for rt, st := range seq { ... }  // breaking out cancels the join
//	if err := errf(); err != nil { ... }
//
// All joins honour context cancellation: the context is checked at phase
// boundaries and once per chunk inside the sort and merge loops, so a
// canceled context aborts a long join promptly with ctx.Err().
//
// Every algorithm runs on a shared parallel runtime with two scheduling
// modes: Static (the paper-faithful default — work is fixed per worker and
// workers meet only at phase barriers) and Morsel (the match phase is split
// into small morsels that idle workers steal with a NUMA-locality
// preference, balancing skew the static splitters cannot). Both modes
// produce identical results:
//
//	res, err := engine.Join(ctx, r, s, mpsm.WithScheduler(mpsm.Morsel))
//
// A long-lived Engine serving many joins should enable the engine-wide
// scratch pool, which reuses run, partition, histogram and hash-table
// buffers across joins (including concurrent ones) and makes the steady
// state essentially allocation-free:
//
//	engine := mpsm.New(mpsm.WithScratchPool(true), mpsm.WithPoolLimit(1<<30))
//
// # Operator plans
//
// Beyond single joins, the engine executes composable operator plans: DAGs
// of Scan, Join, Project/Map, GroupAggregate and Sink nodes. Sort-merge
// joins compose without re-sorting because the MPSM join phase consumes and
// produces key-ordered runs — a join feeding a join materializes its
// projected output through the scratch pool, and a GroupAggregate directly
// above an MPSM join runs as a streaming merge-based aggregation that never
// builds a hash table:
//
//	plan := mpsm.NewPlan()
//	rs := plan.Join(plan.Scan(r), plan.Scan(s))   // R ⋈ S
//	rst := plan.Join(rs, plan.Scan(t))            // (R ⋈ S) ⋈ T
//	plan.GroupAggregate(rst, mpsm.AggSum)         // SUM(...) GROUP BY key
//	res, err := engine.RunPlan(ctx, plan)
//	// res.Output: one {key, sum} tuple per group, ascending
//
// The same plan can be written as a Datalog-style rule and compiled with
// Compile (or run in one step with Engine.Query / Service.Query); see the
// Compile documentation for the language:
//
//	cat := mpsm.MapCatalog{"r": r, "s": s, "t": t}
//	res, err := engine.Query(ctx,
//	        "ans(K, Sum) :- r(K, _), s(K, _), t(K, Z), agg sum(Z)", cat)
//
// # Auto-planning
//
// With WithAutoPlan(true) the engine stops taking physical orders: sampled
// relation statistics feed a calibrated cost model that picks the join
// algorithm per join, orders multi-join chains by estimated intermediate
// size, reverses build/probe roles where safe, declares presorted inputs,
// chooses Static vs Morsel scheduling from the skew profile, and pins the
// aggregation strategy. Explain and ExplainAnalyze describe the chosen
// physical plan with estimated (and actual) cardinalities:
//
//	engine := mpsm.New(mpsm.WithAutoPlan(true))
//	res, err := engine.Join(ctx, r, s)   // algorithm picked from the data
//	ex, err := engine.Explain(plan)      // plan tree + estimates + rationale
//
// The legacy one-shot Join and JoinWithDiskStats functions remain as thin
// deprecated wrappers over an implicit engine.
//
// See the examples directory for runnable scenarios, including the
// experiment harness in cmd/mpsmbench that regenerates the figures of the
// paper's evaluation section.
package mpsm

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/memory"
	"repro/internal/mergejoin"
	"repro/internal/numa"
	"repro/internal/relation"
	"repro/internal/result"
	"repro/internal/sched"
	"repro/internal/workload"
)

// Tuple is a single row: a 64-bit join key and a 64-bit payload.
type Tuple = relation.Tuple

// Relation is an in-memory table held as a flat slice of tuples.
type Relation = relation.Relation

// Result describes the outcome of a join execution, including the per-phase
// timing breakdown, the join cardinality, the max(R.payload+S.payload)
// aggregate, and (when enabled) the simulated NUMA statistics.
type Result = result.Result

// Phase is one timed phase of a join execution.
type Phase = result.Phase

// AccessStats are the simulated NUMA access counters of a join execution.
type AccessStats = numa.AccessStats

// Topology describes a simulated NUMA machine (nodes × cores per node).
type Topology = numa.Topology

// DiskStats reports the storage behaviour of a D-MPSM execution.
type DiskStats = core.DiskStats

// ScratchStats reports one join's scratch-pool traffic (see Result.Scratch).
type ScratchStats = memory.LeaseStats

// BatchStats reports a join's columnar batch traffic (see Result.Batch): all
// zeros when the join ran row at a time, batch/pair counts when the columnar
// path or a batched hash-join probe delivered the output.
type BatchStats = result.BatchStats

// PoolStats reports the cumulative behaviour of an Engine's scratch pool
// (see Engine.PoolStats).
type PoolStats = memory.PoolStats

// NewRelation wraps a tuple slice as a relation without copying.
func NewRelation(name string, tuples []Tuple) *Relation { return relation.New(name, tuples) }

// Algorithm selects a join implementation.
type Algorithm = exec.Algorithm

// Available join algorithms.
const (
	PMPSM     = exec.AlgorithmPMPSM
	BMPSM     = exec.AlgorithmBMPSM
	DMPSM     = exec.AlgorithmDMPSM
	Wisconsin = exec.AlgorithmWisconsin
	RadixHash = exec.AlgorithmRadix
)

// ParseAlgorithm converts an algorithm name into an Algorithm. Matching is
// case-insensitive and ignores spaces and hyphens, so the String() forms
// ("P-MPSM", "Radix HJ") round-trip alongside the command-line short forms
// ("pmpsm", "radix").
func ParseAlgorithm(name string) (Algorithm, error) { return exec.ParseAlgorithm(name) }

// SplitterStrategy selects how P-MPSM balances its range partitions.
type SplitterStrategy = core.SplitterStrategy

// Available splitter strategies for P-MPSM.
const (
	// SplitterEquiCost balances sort + join cost per worker using the
	// global R histogram and the S CDF (the paper's skew-resilient default).
	SplitterEquiCost = core.SplitterEquiCost
	// SplitterEquiHeight balances only R tuple counts (Figure 16 baseline).
	SplitterEquiHeight = core.SplitterEquiHeight
	// SplitterUniform uses static, data-oblivious key ranges.
	SplitterUniform = core.SplitterUniform
)

// Scheduler selects how the match phase of a join is mapped onto workers.
type Scheduler = sched.Mode

// Available scheduling modes.
const (
	// Static is the paper-faithful mode: work is assigned up front and
	// workers synchronize only at phase barriers (commandment C3). This is
	// the default.
	Static = sched.Static
	// Morsel splits the match phase into small morsels that idle workers
	// steal with a NUMA-locality preference, balancing skew that static
	// splitters cannot. Results are identical to Static.
	Morsel = sched.Morsel
)

// ParseScheduler converts a scheduling-mode name ("static", "morsel") into a
// Scheduler. Matching is case-insensitive.
func ParseScheduler(name string) (Scheduler, error) { return sched.ParseMode(name) }

// JoinKind selects the join semantics (inner, left-outer, semi, anti).
type JoinKind = mergejoin.Kind

// Available join kinds. Non-inner kinds are supported by the B-MPSM and
// P-MPSM algorithms (the paper lists them as natural extensions of MPSM).
const (
	// InnerJoin emits one result per matching (r, s) pair.
	InnerJoin = mergejoin.Inner
	// LeftOuterJoin additionally emits unmatched private tuples with a
	// zero-valued public side.
	LeftOuterJoin = mergejoin.LeftOuter
	// SemiJoin emits each private tuple with at least one match, once.
	SemiJoin = mergejoin.Semi
	// AntiJoin emits each private tuple without any match.
	AntiJoin = mergejoin.Anti
)

// Config configures a join execution through the deprecated one-shot API.
// New code should construct an Engine with functional options instead.
type Config struct {
	// Algorithm selects the join implementation; the zero value is P-MPSM.
	Algorithm Algorithm
	// Kind selects the join semantics; the zero value is an inner join.
	Kind JoinKind
	// BandWidth, when non-zero, turns the join into a non-equi band join:
	// tuples match when |R.key − S.key| <= BandWidth. Requires Kind ==
	// InnerJoin and the B-MPSM or P-MPSM algorithm.
	BandWidth uint64
	// Workers is the degree of parallelism; 0 selects GOMAXPROCS.
	Workers int
	// Splitters selects P-MPSM's partition balancing strategy.
	Splitters SplitterStrategy
	// HistogramBits is the granularity of P-MPSM's private-input histogram
	// (2^bits clusters); 0 selects the default of 10.
	HistogramBits int
	// CollectPerWorker records per-worker phase breakdowns.
	CollectPerWorker bool
	// PresortedPublic and PresortedPrivate declare that the corresponding
	// input is already sorted by join key, letting the MPSM variants skip
	// the respective sorting phase (verified per chunk, so a false
	// declaration costs only the check).
	PresortedPublic  bool
	PresortedPrivate bool

	// TrackNUMA enables the simulated NUMA access accounting.
	TrackNUMA bool
	// Topology overrides the simulated NUMA topology (default: 4 nodes × 8
	// cores, the paper's evaluation machine).
	Topology Topology

	// Disk configures the D-MPSM variant; ignored by the other algorithms.
	Disk DiskConfig
}

// DiskConfig configures the disk-enabled D-MPSM variant.
type DiskConfig struct {
	// PageSize is the number of tuples per spilled page (default 1024).
	PageSize int
	// PageBudget caps the number of public-input pages kept in RAM
	// (0 = unlimited).
	PageBudget int
	// PrefetchDistance is the prefetcher lookahead in pages.
	PrefetchDistance int
	// ReadLatency and WriteLatency simulate per-page disk access latency.
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// options converts the legacy configuration into engine options.
func (c Config) options() []Option {
	opts := []Option{
		WithAlgorithm(c.Algorithm),
		WithKind(c.Kind),
		WithWorkers(c.Workers),
		WithSplitters(c.Splitters),
		WithHistogramBits(c.HistogramBits),
		WithDisk(c.Disk),
	}
	if c.BandWidth > 0 {
		opts = append(opts, WithBandWidth(c.BandWidth))
	}
	if c.CollectPerWorker {
		opts = append(opts, WithPerWorkerStats())
	}
	if c.PresortedPublic {
		opts = append(opts, WithPresortedPublic())
	}
	if c.PresortedPrivate {
		opts = append(opts, WithPresortedPrivate())
	}
	if c.TrackNUMA {
		opts = append(opts, WithNUMATracking(c.Topology))
	}
	return opts
}

// Join executes an equi-join between the private input r and the public input
// s with the configured algorithm and returns the result.
//
// Deprecated: construct a reusable Engine with New and call Engine.Join,
// which adds context cancellation and streaming sinks. Join remains for
// compatibility and is equivalent to
// New(cfg...).Join(context.Background(), r, s).
func Join(r, s *Relation, cfg Config) (*Result, error) {
	return New(cfg.options()...).Join(context.Background(), r, s)
}

// JoinWithDiskStats is Join for the D-MPSM algorithm, additionally returning
// the buffer pool and disk statistics of the execution.
//
// Deprecated: use Engine.JoinWithDiskStats.
func JoinWithDiskStats(r, s *Relation, cfg Config) (*Result, *DiskStats, error) {
	return New(cfg.options()...).JoinWithDiskStats(context.Background(), r, s)
}

// Skew describes the key-value distribution of a generated relation.
type Skew = workload.Skew

// Available key distributions for generated relations.
const (
	// SkewNone draws keys uniformly from the domain.
	SkewNone = workload.SkewNone
	// SkewLow80 draws 80% of the keys from the lowest 20% of the domain.
	SkewLow80 = workload.SkewLow80
	// SkewHigh80 draws 80% of the keys from the highest 20% of the domain.
	SkewHigh80 = workload.SkewHigh80
)

// GenerateUniform creates a relation of n tuples with uniformly distributed
// 64-bit keys in [0, 2^32) and pseudo-random payloads, matching the paper's
// dataset format.
func GenerateUniform(name string, n int, seed uint64) *Relation {
	return workload.UniformRelation(name, n, workload.DefaultKeyDomain, seed)
}

// GenerateSkewed creates a relation of n tuples with an 80:20-skewed key
// distribution over [0, 2^32).
func GenerateSkewed(name string, n int, skew Skew, seed uint64) *Relation {
	return workload.SkewedRelation(name, n, workload.DefaultKeyDomain, skew, seed)
}

// GenerateSkewedWithDomain is GenerateSkewed with an explicit key domain
// [0, domain). Smaller domains increase the key density and therefore the join
// selectivity, which keeps skew experiments meaningful at small scale.
func GenerateSkewedWithDomain(name string, n int, domain uint64, skew Skew, seed uint64) *Relation {
	return workload.SkewedRelation(name, n, domain, skew, seed)
}

// GenerateForeignKey creates a relation of n tuples whose keys are sampled
// from the parent relation's keys, guaranteeing join partners (a fact table
// referencing a dimension table).
func GenerateForeignKey(name string, parent *Relation, n int, seed uint64) *Relation {
	return workload.ForeignKeyRelation(name, parent, n, seed)
}
