package mpsm

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"sync"
	"weak"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/faultinject"
	"repro/internal/memory"
	"repro/internal/planner"
	"repro/internal/relation"
	"repro/internal/sched"
	"repro/internal/sink"
	"repro/internal/stats"
)

// settings is the resolved configuration of an Engine or a single join call.
type settings struct {
	algorithm        Algorithm
	kind             JoinKind
	band             uint64
	workers          int
	splitters        SplitterStrategy
	histogramBits    int
	collectPerWorker bool
	presortedPublic  bool
	presortedPrivate bool
	trackNUMA        bool
	topology         Topology
	disk             DiskConfig
	sink             Sink
	scheduler        Scheduler
	morselSize       int
	batchSize        int
	scratchPool      bool
	poolLimit        int64
	autoPlan         bool

	// Serving-layer plumbing, set only through the unexported options the
	// Service injects: the fair-share ticket the query's workers are gated
	// by, and the admission reservation its scratch leases are attributed to.
	gate  *sched.Ticket
	owner *memory.Reservation

	// faults arms deterministic fault injection (WithFaultInjection); nil
	// injects nothing.
	faults *faultinject.Set
}

// withGate gates every worker goroutine of the call through the given
// fair-share ticket; the Service sets it per query.
func withGate(t *sched.Ticket) Option {
	return func(s *settings) { s.gate = t }
}

// withOwner attributes the call's scratch leases to an admission reservation;
// the Service sets it per query.
func withOwner(r *memory.Reservation) Option {
	return func(s *settings) { s.owner = r }
}

// Option configures an Engine at construction time or overrides the engine's
// configuration for a single Join call.
type Option func(*settings)

// WithAlgorithm selects the join implementation; the default is P-MPSM.
func WithAlgorithm(a Algorithm) Option {
	return func(s *settings) { s.algorithm = a }
}

// WithWorkers sets the degree of parallelism T; 0 selects GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(s *settings) { s.workers = n }
}

// WithKind selects the join semantics (inner, left-outer, semi, anti). The
// non-inner kinds are supported by the B-MPSM and P-MPSM algorithms.
func WithKind(k JoinKind) Option {
	return func(s *settings) { s.kind = k }
}

// WithBandWidth turns the join into a non-equi band join: tuples match when
// |R.key − S.key| <= width. Requires an inner join kind and the B-MPSM or
// P-MPSM algorithm.
func WithBandWidth(width uint64) Option {
	return func(s *settings) { s.band = width }
}

// WithSplitters selects P-MPSM's range-partition balancing strategy.
func WithSplitters(strategy SplitterStrategy) Option {
	return func(s *settings) { s.splitters = strategy }
}

// WithHistogramBits sets the granularity of P-MPSM's private-input histogram
// (2^bits clusters); 0 selects the default of 10.
func WithHistogramBits(bits int) Option {
	return func(s *settings) { s.histogramBits = bits }
}

// WithPerWorkerStats records per-worker phase breakdowns in the Result.
func WithPerWorkerStats() Option {
	return func(s *settings) { s.collectPerWorker = true }
}

// WithPresortedPublic declares that the public input is already sorted by
// join key, letting the MPSM variants skip its sorting phase (verified per
// chunk, so a false declaration costs only the check).
func WithPresortedPublic() Option {
	return func(s *settings) { s.presortedPublic = true }
}

// WithPresortedPrivate is WithPresortedPublic for the private input.
func WithPresortedPrivate() Option {
	return func(s *settings) { s.presortedPrivate = true }
}

// WithNUMATracking enables the simulated NUMA access accounting. An optional
// topology overrides the default 4-node × 8-core machine of the paper's
// evaluation.
func WithNUMATracking(topology ...Topology) Option {
	return func(s *settings) {
		s.trackNUMA = true
		if len(topology) > 0 {
			s.topology = topology[0]
		}
	}
}

// WithDisk configures the D-MPSM buffer pool and simulated disk; it is
// ignored by the other algorithms.
func WithDisk(cfg DiskConfig) Option {
	return func(s *settings) { s.disk = cfg }
}

// WithScheduler selects how the match phase is scheduled onto workers.
// Static (the default) is the paper-faithful barrier-only mode: every worker
// joins exactly its own private run, and load balance rests on the
// histogram/CDF splitters. Morsel splits the match phase into small morsels
// that idle workers steal with a NUMA-locality preference, closing the
// per-worker straggler gap that splitter estimation errors or value skew
// leave open. Both modes produce identical results.
func WithScheduler(mode Scheduler) Option {
	return func(s *settings) { s.scheduler = mode }
}

// WithMorselSize sets the number of private-run tuples per morsel used by
// the Morsel scheduler in the in-memory match phases (B-MPSM, P-MPSM and
// the hash-join baselines); 0 selects the default (8192). Smaller morsels
// balance better but pay more dispatch overhead. D-MPSM's disk-paged match
// phase always uses whole (private-run, public-run) pairs as its morsels
// and ignores this setting.
func WithMorselSize(tuples int) Option {
	return func(s *settings) { s.morselSize = tuples }
}

// WithBatchSize controls the columnar batch execution path of the inner
// equi-join match phases: runs are generated as sorted key/payload column
// pairs (structure-of-arrays) and the merge kernels scan contiguous key
// columns with software prefetch, emitting matches in batches of n pairs.
// n == 0 (the default) selects the built-in batch size of 1024 tuples; a
// negative n disables the columnar path and runs the row-at-a-time kernels;
// a positive n is the batch size in tuples. Band joins, non-inner kinds,
// D-MPSM and the hash-join baselines are unaffected (though the hash joins
// always batch their probe output). Both paths produce identical results;
// Result.Batch reports the batch traffic.
func WithBatchSize(n int) Option {
	return func(s *settings) { s.batchSize = n }
}

// WithSink directs the joined tuple stream into the given sink instead of the
// default max-sum aggregate. Sinks are stateful: pass a fresh (or reusable,
// see Sink) sink per Join call, not to New, when the engine runs joins
// concurrently.
func WithSink(snk Sink) Option {
	return func(s *settings) { s.sink = snk }
}

// WithScratchPool enables (or disables) the engine-wide scratch pool: run,
// partition, histogram and hash-table buffers are checked out of a reusable,
// size-classed arena per join and returned — reset, not freed — when the join
// finishes, making the steady state of a long-lived Engine essentially
// allocation-free. The pool is created at engine construction, so pass this
// to New; as a per-call option it can only disable pooling for that call
// (WithScratchPool(true) on an engine built without a pool is a no-op). The
// pool is guarded for concurrent joins, and it is safe with JoinStream: the
// stream carries tuple values, never references into pooled buffers. Pool
// behaviour is observable via Result.Scratch and Engine.PoolStats.
func WithScratchPool(enabled bool) Option {
	return func(s *settings) { s.scratchPool = enabled }
}

// WithPoolLimit caps the bytes the scratch pool may keep parked between joins
// (buffers beyond the limit are released to the garbage collector); 0 selects
// the default of 512 MiB. It only takes effect together with
// WithScratchPool(true) at engine construction.
func WithPoolLimit(bytes int64) Option {
	return func(s *settings) { s.poolLimit = bytes }
}

// WithAutoPlan enables (or disables) the cost-based planner: before every
// Join, JoinStream or RunPlan execution the engine samples statistics of the
// input relations (cached across calls), estimates cardinalities, and
// rewrites the physical plan — join algorithm per join, join order across
// inner multi-join chains, build/probe roles, Static vs Morsel scheduling,
// presorted-input declarations, and the aggregation strategy. Explain shows
// the decisions. Auto-planning overrides a configured algorithm and
// scheduler (including per-node plan options); it respects join kind, band
// width, worker count, and a configured D-MPSM (which expresses a memory
// constraint the cost model cannot see). As an engine option it sets the
// default for every call; as a per-call option it overrides that default.
func WithAutoPlan(enabled bool) Option {
	return func(s *settings) { s.autoPlan = enabled }
}

// Engine is a prepared, reusable join engine: construct it once with New and
// run any number of joins against it. The engine itself is immutable and safe
// for concurrent use; per-call state (sinks, results) is created per Join.
// When constructed with WithScratchPool(true) the engine additionally owns a
// scratch pool whose buffers all its joins share (the pool is internally
// synchronized, so this includes concurrent joins).
type Engine struct {
	base settings
	pool *memory.Pool

	// statsMu guards statsCache, the per-relation statistics profiles the
	// auto-planner samples (keyed by relation identity, invalidated when the
	// cardinality changes; the join algorithms never mutate their inputs),
	// and planCache, the memoized single-join planner decisions. Both caches
	// key relations through weak pointers so a long-lived engine never
	// pins a transient relation's tuple memory; entries for collected
	// relations linger only until the size-bound reset.
	statsMu    sync.Mutex
	statsCache map[weak.Pointer[Relation]]statsEntry
	planCache  map[planKey]planner.Choice
}

// planKey identifies one single-join planning problem: the input relations
// (by identity and cardinality) and every configuration facet the planner's
// decision depends on.
type planKey struct {
	r, s       weak.Pointer[Relation]
	rLen, sLen int
	configured Algorithm
	kind       JoinKind
	band       uint64
	workers    int
	symmetric  bool
}

// statsEntry is one cached relation profile.
type statsEntry struct {
	len  int
	prof *stats.Profile
}

// statsCacheLimit bounds the number of cached profiles; beyond it the cache
// resets (profiles are cheap to recompute, the bound only stops unbounded
// growth when an engine sees a stream of distinct relations).
const statsCacheLimit = 1024

// profileFor returns the (cached) sampled statistics of a relation.
func (e *Engine) profileFor(rel *relation.Relation) *stats.Profile {
	key := weak.Make(rel)
	e.statsMu.Lock()
	if ent, ok := e.statsCache[key]; ok && ent.len == rel.Len() {
		e.statsMu.Unlock()
		return ent.prof
	}
	e.statsMu.Unlock()

	prof := stats.Collect(rel)

	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	if e.statsCache == nil || len(e.statsCache) >= statsCacheLimit {
		e.statsCache = make(map[weak.Pointer[Relation]]statsEntry)
	}
	e.statsCache[key] = statsEntry{len: rel.Len(), prof: prof}
	return prof
}

// New returns an Engine with the given configuration. The zero configuration
// runs P-MPSM inner joins with GOMAXPROCS workers and the max-sum sink.
func New(opts ...Option) *Engine {
	e := &Engine{}
	for _, o := range opts {
		o(&e.base)
	}
	if e.base.scratchPool {
		e.pool = memory.NewPool(e.base.poolLimit)
	}
	return e
}

// PoolStats returns a snapshot of the engine's scratch-pool counters; ok is
// false when the engine was constructed without WithScratchPool.
func (e *Engine) PoolStats() (stats PoolStats, ok bool) {
	if e.pool == nil {
		return PoolStats{}, false
	}
	return e.pool.Stats(), true
}

// resolve merges per-call options over the engine's base configuration.
func (e *Engine) resolve(opts []Option) settings {
	cfg := e.base
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// scratchFor returns the pool one call should use: the engine's pool, unless
// the call (or the engine) runs with pooling disabled.
func (e *Engine) scratchFor(cfg settings) *memory.Pool {
	if !cfg.scratchPool {
		return nil
	}
	return e.pool
}

// coreOptions projects the resolved configuration onto the join options.
func (cfg settings) coreOptions(pool *memory.Pool) core.Options {
	return core.Options{
		Sink:             cfg.sink,
		Workers:          cfg.workers,
		Kind:             cfg.kind,
		Band:             cfg.band,
		HistogramBits:    cfg.histogramBits,
		Splitters:        cfg.splitters,
		CollectPerWorker: cfg.collectPerWorker,
		PresortedPublic:  cfg.presortedPublic,
		PresortedPrivate: cfg.presortedPrivate,
		TrackNUMA:        cfg.trackNUMA,
		Topology:         cfg.topology,
		Scheduler:        cfg.scheduler,
		MorselSize:       cfg.morselSize,
		BatchSize:        cfg.batchSize,
		Scratch:          pool,
		Owner:            cfg.owner,
		Gate:             cfg.gate,
		Faults:           cfg.faults,
	}
}

// diskOptions projects the resolved configuration onto the D-MPSM options.
func (cfg settings) diskOptions() core.DiskOptions {
	return core.DiskOptions{
		PageSize:         cfg.disk.PageSize,
		PageBudget:       cfg.disk.PageBudget,
		PrefetchDistance: cfg.disk.PrefetchDistance,
		ReadLatency:      cfg.disk.ReadLatency,
		WriteLatency:     cfg.disk.WriteLatency,
	}
}

// query assembles the exec query for one join call.
func (cfg settings) query(r, s *Relation, pool *memory.Pool) exec.Query {
	return exec.Query{
		R:           r,
		S:           s,
		Algorithm:   cfg.algorithm,
		JoinOptions: cfg.coreOptions(pool),
		DiskOptions: cfg.diskOptions(),
	}
}

// run executes one join call end to end.
func (e *Engine) run(ctx context.Context, r, s *Relation, opts []Option) (*exec.QueryResult, error) {
	if r == nil || s == nil {
		return nil, fmt.Errorf("mpsm: Join requires non-nil relations")
	}
	cfg := e.resolve(opts)
	if cfg.autoPlan {
		cfg, r, s = e.autoJoin(cfg, r, s)
	}
	return exec.Run(ctx, cfg.query(r, s, e.scratchFor(cfg)))
}

// autoJoin applies the cost-based planner to a single-join call: the input
// profiles choose the algorithm, scheduling mode, presorted declarations
// and, when the sink is the commutative built-in max-sum aggregate, the
// build/probe roles. Decisions are memoized per (inputs, configuration), so
// an engine serving the same join repeatedly plans it once.
func (e *Engine) autoJoin(cfg settings, r, s *Relation) (settings, *Relation, *Relation) {
	key := planKey{
		r: weak.Make(r), s: weak.Make(s), rLen: r.Len(), sLen: s.Len(),
		configured: cfg.algorithm, kind: cfg.kind, band: cfg.band,
		workers: cfg.workers, symmetric: cfg.sink == nil,
	}
	e.statsMu.Lock()
	ch, ok := e.planCache[key]
	e.statsMu.Unlock()
	if !ok {
		ch = planner.ChooseJoin(e.profileFor(r), e.profileFor(s), planner.Constraints{
			Configured:        cfg.algorithm,
			Kind:              cfg.kind,
			Band:              cfg.band,
			Workers:           cfg.workers,
			SymmetricConsumer: cfg.sink == nil,
		}, planner.DefaultCostModel())
		e.statsMu.Lock()
		if e.planCache == nil || len(e.planCache) >= statsCacheLimit {
			e.planCache = make(map[planKey]planner.Choice)
		}
		e.planCache[key] = ch
		e.statsMu.Unlock()
	}

	userPriv, userPub := cfg.presortedPrivate, cfg.presortedPublic
	cfg.algorithm = ch.Algorithm
	cfg.scheduler = ch.Scheduler
	if ch.MorselSize > 0 {
		cfg.morselSize = ch.MorselSize
	}
	if ch.Swap {
		r, s = s, r
		userPriv, userPub = userPub, userPriv
	}
	cfg.presortedPrivate = ch.PresortedPrivate || userPriv
	cfg.presortedPublic = ch.PresortedPublic || userPub
	return cfg, r, s
}

// Join executes an equi-join between the private input r and the public
// input s, streaming every matching pair into the configured sink (the
// max-sum aggregate by default, whose Matches/MaxSum appear in the Result).
//
// The context is checked at every phase boundary and once per chunk inside
// the sort and merge loops; a canceled context aborts the join and returns
// ctx.Err().
//
// For P-MPSM the private input should be the smaller relation (see the
// paper's role-reversal discussion); Join does not reverse roles
// automatically — unless auto-planning is enabled (WithAutoPlan), which may
// execute the join with the roles reversed when the sink is the commutative
// built-in max-sum aggregate. Per-call options override the engine's
// configuration for this call only.
func (e *Engine) Join(ctx context.Context, r, s *Relation, opts ...Option) (*Result, error) {
	qr, err := e.run(ctx, r, s, opts)
	if err != nil {
		return nil, err
	}
	return qr.Join, nil
}

// JoinWithDiskStats is Join forced onto the D-MPSM algorithm, additionally
// returning the buffer pool and disk statistics of the execution.
func (e *Engine) JoinWithDiskStats(ctx context.Context, r, s *Relation, opts ...Option) (*Result, *DiskStats, error) {
	// The three-index slice keeps the append off the caller's backing array:
	// concurrent calls may share opts.
	qr, err := e.run(ctx, r, s, append(opts[:len(opts):len(opts)], WithAlgorithm(DMPSM)))
	if err != nil {
		return nil, nil, err
	}
	return qr.Join, qr.DiskStats, nil
}

// JoinStream executes the join as a streaming iterator over the joined
// (r, s) tuple pairs, for use with range-over-func:
//
//	seq, errf := engine.JoinStream(ctx, r, s)
//	for rt, st := range seq {
//	    ... // breaking out cancels the join
//	}
//	if err := errf(); err != nil { ... }
//
// The join runs concurrently with the consumer; pairs arrive in an
// unspecified order. Breaking out of the loop cancels the underlying join
// and is not an error. The error function reports the join's outcome and
// must be called after the loop; ranging the sequence a second time re-runs
// the join. A WithSink option is ignored — the stream is the sink.
func (e *Engine) JoinStream(ctx context.Context, r, s *Relation, opts ...Option) (iter.Seq2[Tuple, Tuple], func() error) {
	var streamErr error
	seq := func(yield func(Tuple, Tuple) bool) {
		streamCtx, cancel := context.WithCancel(ctx)
		defer cancel()

		type pair struct{ r, s Tuple }
		ch := make(chan pair, 1024)
		errc := make(chan error, 1)
		go func() {
			defer close(ch)
			snk := sink.NewFunc(func(rt, st relation.Tuple) {
				select {
				case ch <- pair{rt, st}:
				case <-streamCtx.Done():
				}
			})
			// Three-index slice: never append into the caller's backing array.
			_, err := e.run(streamCtx, r, s, append(opts[:len(opts):len(opts)], WithSink(snk)))
			errc <- err
		}()

		broke := false
		for p := range ch {
			if !yield(p.r, p.s) {
				broke = true
				cancel()
				break
			}
		}
		if broke {
			// Wait for the producer to observe the cancellation and drain
			// whatever it already buffered.
			for range ch {
			}
		}
		err := <-errc
		if broke && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// The consumer stopped early; the resulting self-cancellation is
			// normal stream termination, not a failure.
			err = nil
		}
		streamErr = err
	}
	return seq, func() error { return streamErr }
}
