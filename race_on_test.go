//go:build race

package mpsm

// raceEnabled reports whether the race detector instruments this build; the
// allocation-accounting test skips itself under it.
const raceEnabled = true
