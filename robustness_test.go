package mpsm

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// --- Service close semantics -------------------------------------------------

func TestServiceCloseIdempotent(t *testing.T) {
	svc := NewService(New())
	for i := 0; i < 3; i++ {
		if err := svc.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	// Concurrent closes must all return without deadlock.
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			svc.Close()
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("concurrent Close calls deadlocked")
	}
}

func TestServiceCloseDrainsInFlight(t *testing.T) {
	r := GenerateUniform("R", 200_000, 1)
	s := GenerateForeignKey("S", r, 400_000, 2)
	svc := NewService(New(WithScratchPool(true)))

	started := make(chan struct{})
	var joinErr error
	var res *Result
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		res, joinErr = svc.Join(context.Background(), r, s)
	}()
	<-started

	// Close while the query runs: it must block until the query finishes,
	// and the query itself must succeed.
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if joinErr != nil {
		t.Fatalf("in-flight query failed under Close: %v", joinErr)
	}
	if res.Matches == 0 {
		t.Fatal("in-flight query returned no matches")
	}
	if svc.Stats().Active != 0 {
		t.Fatal("Active != 0 after Close returned")
	}
	// After Close, new queries are rejected.
	if _, err := svc.Join(context.Background(), r, s); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("post-Close join returned %v, want ErrServiceClosed", err)
	}
}

func TestServiceCloseDrainsQueued(t *testing.T) {
	r := GenerateUniform("R", 50_000, 1)
	s := GenerateForeignKey("S", r, 100_000, 2)
	// A budget equal to the limit: queries serialize through admission, so
	// while one runs the others wait in the queue.
	svc := NewService(New(WithScratchPool(true)),
		WithMaxMemory(4<<20),
		WithDefaultBudget(4<<20),
		WithAdmissionQueue(16, 10*time.Second),
		WithDegradationSteps(0))

	const n = 4
	var ok atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Join(context.Background(), r, s); err == nil {
				ok.Add(1)
			} else {
				t.Errorf("queued query failed under Close: %v", err)
			}
		}()
	}
	// Give the group time to admit one query and queue the rest, then close.
	time.Sleep(20 * time.Millisecond)
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	if int(ok.Load()) != n {
		t.Fatalf("%d/%d queued queries completed across Close", ok.Load(), n)
	}
	st := svc.Stats()
	if st.Admission.Waiting != 0 || st.Memory.ReservedBytes != 0 {
		t.Fatalf("post-Close state: waiting=%d reserved=%d", st.Admission.Waiting, st.Memory.ReservedBytes)
	}
}

// --- Degradation ladder ------------------------------------------------------

func TestDegradationLadderAdmitsUnderPressure(t *testing.T) {
	r := GenerateUniform("R", 20_000, 1)
	s := GenerateForeignKey("S", r, 60_000, 2)
	// Budgets of 8 MiB against a 8 MiB limit: two concurrent queries cannot
	// both be admitted at full budget, and the queue is disabled — without
	// the ladder, the second query would be rejected with ErrQueueFull.
	svc := NewService(New(WithScratchPool(true)),
		WithMaxMemory(8<<20),
		WithDefaultBudget(8<<20),
		WithAdmissionQueue(1, time.Millisecond))
	defer svc.Close()

	const n = 6
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = svc.Join(context.Background(), r, s)
		}(i)
	}
	wg.Wait()
	failed := 0
	for _, err := range errs {
		if err != nil {
			if !Retryable(err) {
				t.Errorf("pressured query failed non-retryably: %v", err)
			}
			failed++
		}
	}
	st := svc.Stats()
	t.Logf("degradation: %+v, %d/%d failed", st.Degradation, failed, n)
	if failed == n {
		t.Fatal("every query failed; the ladder admitted nothing")
	}
	if st.Degradation.AdmissionRetries == 0 {
		t.Fatal("no admission retries despite contention beyond the queue")
	}
	if st.Degradation.BudgetShrinks == 0 {
		t.Fatal("no budget shrinks despite 8MiB budgets colliding")
	}
}

func TestDegradationDisabled(t *testing.T) {
	r := GenerateUniform("R", 1000, 1)
	s := GenerateForeignKey("S", r, 2000, 2)
	svc := NewService(New(), WithDegradationSteps(0), WithDefaultBudget(1<<20))
	defer svc.Close()
	if _, err := svc.Join(context.Background(), r, s); err != nil {
		t.Fatalf("join with ladder disabled: %v", err)
	}
	if st := svc.Stats(); st.Degradation.AdmissionRetries != 0 {
		t.Fatalf("disabled ladder retried admission %d times", st.Degradation.AdmissionRetries)
	}
}

func TestExecDeadlineExpires(t *testing.T) {
	r := GenerateUniform("R", 500_000, 1)
	s := GenerateForeignKey("S", r, 2_000_000, 2)
	svc := NewService(New(WithScratchPool(true), WithWorkers(1)))
	defer svc.Close()
	_, err := svc.Join(context.Background(), r, s, WithQueryDeadline(time.Microsecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("1µs-deadline query returned %v, want DeadlineExceeded", err)
	}
	st := svc.Stats()
	if st.Degradation.DeadlineExpired != 1 {
		t.Fatalf("DeadlineExpired = %d, want 1", st.Degradation.DeadlineExpired)
	}
	if st.Memory.ReservedBytes != 0 || st.Memory.ActiveLeases != 0 {
		t.Fatalf("expired query leaked memory: %+v", st.Memory)
	}
}

// --- Morsel cancellation mid-phase (satellite: cancellation under work
// stealing) ------------------------------------------------------------------

func TestMorselCancelMidPhase(t *testing.T) {
	r := GenerateUniform("R", 300_000, 1)
	s := GenerateForeignKey("S", r, 1_200_000, 2)
	engine := New(WithScratchPool(true), WithWorkers(4))

	// Warm up so the pool's lists are populated and a baseline goroutine
	// count is meaningful.
	if _, err := engine.Join(context.Background(), r, s, WithScheduler(Morsel)); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	for _, alg := range []Algorithm{PMPSM, BMPSM, Wisconsin, RadixHash} {
		for _, delay := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
			ctx, cancel := context.WithCancel(context.Background())
			if delay == 0 {
				cancel() // canceled before the join even starts
			} else {
				timer := time.AfterFunc(delay, cancel) // mid-phase, mid-steal
				defer timer.Stop()
			}
			_, err := engine.Join(ctx, r, s, WithAlgorithm(alg), WithScheduler(Morsel))
			cancel()
			if err == nil {
				// The join beat the cancel; acceptable for the longest delay.
				continue
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v (cancel after %v): returned %v, want context.Canceled", alg, delay, err)
			}
		}
	}

	// Full lease return: no canceled join may leave a lease checked out.
	st, ok := engine.PoolStats()
	if !ok {
		t.Fatal("engine has no pool")
	}
	if st.ActiveLeases != 0 {
		t.Fatalf("ActiveLeases = %d after canceled joins", st.ActiveLeases)
	}
	// Worker goroutines unwind: allow a small slack for runtime background
	// goroutines.
	deadline := time.After(5 * time.Second)
	for runtime.NumGoroutine() > before+8 {
		select {
		case <-deadline:
			t.Fatalf("goroutines grew from %d to %d across canceled morsel joins", before, runtime.NumGoroutine())
		default:
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func TestMorselCancelDuringStalls(t *testing.T) {
	r := GenerateUniform("R", 100_000, 1)
	s := GenerateForeignKey("S", r, 400_000, 2)
	engine := New(WithScratchPool(true), WithWorkers(4))
	// Stalls widen the window in which workers sit between morsels when the
	// cancellation lands.
	f := NewFaultSet(3).EnableDelay(FaultMorselStall, 0.5, 300*time.Microsecond)
	ctx, cancel := context.WithCancel(context.Background())
	timer := time.AfterFunc(time.Millisecond, cancel)
	defer timer.Stop()
	defer cancel()
	_, err := engine.Join(ctx, r, s, WithScheduler(Morsel), WithFaultInjection(f))
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("stalled canceled join returned %v", err)
	}
	if st, _ := engine.PoolStats(); st.ActiveLeases != 0 {
		t.Fatalf("ActiveLeases = %d", st.ActiveLeases)
	}
}
