package mpsm

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
)

// refJoinCount brute-forces the inner-join cardinality and max payload sum
// of two string-keyed inputs.
func refJoinCount(rKeys, sKeys []string, rPays, sPays []uint64) (matches uint64, maxSum uint64) {
	byKey := make(map[string][]uint64)
	for i, k := range sKeys {
		byKey[k] = append(byKey[k], sPays[i])
	}
	for i, k := range rKeys {
		for _, sp := range byKey[k] {
			matches++
			if sum := rPays[i] + sp; sum > maxSum {
				maxSum = sum
			}
		}
	}
	return matches, maxSum
}

// encodeStrings builds a string-keyed relation under the given schema.
func encodeStrings(t *testing.T, sc *Schema, name string, ks []string, pays []uint64) *Relation {
	t.Helper()
	rows := make([][]KeyValue, len(ks))
	for i, k := range ks {
		rows[i] = []KeyValue{StringKey(k)}
	}
	rel, err := sc.Encode(name, rows, pays)
	if err != nil {
		t.Fatal(err)
	}
	return rel
}

func TestSchemaStringJoin(t *testing.T) {
	sc := MustSchema(SchemaColumn{Name: "name", Type: ColumnBytes})
	// Keys that stress the tie-break path: long shared prefixes collide in
	// the 8-byte prefix but must not cross-match.
	rKeys := []string{
		"user-0001", "user-0002", "user-0003", "user-0001",
		"customer-with-a-long-name-A", "customer-with-a-long-name-B",
		"x", "",
	}
	sKeys := []string{
		"user-0001", "user-0003", "user-0004",
		"customer-with-a-long-name-A", "customer-with-a-long-name-C",
		"x", "y",
	}
	rPays := make([]uint64, len(rKeys))
	for i := range rPays {
		rPays[i] = uint64(100 + i)
	}
	sPays := make([]uint64, len(sKeys))
	for i := range sPays {
		sPays[i] = uint64(1000 + i)
	}
	wantMatches, wantMax := refJoinCount(rKeys, sKeys, rPays, sPays)

	for _, alg := range []Algorithm{PMPSM, BMPSM, Wisconsin, RadixHash} {
		t.Run(alg.String(), func(t *testing.T) {
			e := New(WithWorkers(4), WithAlgorithm(alg))
			res, err := e.Join(context.Background(),
				encodeStrings(t, sc, "R", rKeys, rPays),
				encodeStrings(t, sc, "S", sKeys, sPays))
			if err != nil {
				t.Fatal(err)
			}
			if res.Matches != wantMatches {
				t.Errorf("Matches = %d, want %d", res.Matches, wantMatches)
			}
			if res.MaxSum != wantMax {
				t.Errorf("MaxSum = %d, want %d", res.MaxSum, wantMax)
			}
		})
	}
}

func TestSchemaJoinMaterializedPayloads(t *testing.T) {
	sc := MustSchema(SchemaColumn{Type: ColumnBytes})
	r := encodeStrings(t, sc, "R", []string{"shared-prefix-key-one", "shared-prefix-key-two"}, []uint64{7, 8})
	s := encodeStrings(t, sc, "S", []string{"shared-prefix-key-two", "shared-prefix-key-three"}, []uint64{70, 80})

	snk := NewMaterializeSink()
	e := New(WithWorkers(2))
	if _, err := e.Join(context.Background(), r, s, WithSink(snk)); err != nil {
		t.Fatal(err)
	}
	pairs := snk.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs, want 1: %v", len(pairs), pairs)
	}
	// The sink must observe the callers' payloads, not the internal row
	// indices the tie-break path runs on.
	if pairs[0].R.Payload != 8 || pairs[0].S.Payload != 70 {
		t.Errorf("pair payloads = (%d, %d), want (8, 70)", pairs[0].R.Payload, pairs[0].S.Payload)
	}
}

func TestSchemaCompositeJoin(t *testing.T) {
	sc := MustSchema(
		SchemaColumn{Name: "region", Type: ColumnBytes},
		SchemaColumn{Name: "id", Type: ColumnInt64},
	)
	type row struct {
		region string
		id     int64
	}
	rRows := []row{{"eu", 1}, {"eu", 2}, {"us", 1}, {"us", -3}, {"ap", 9}}
	sRows := []row{{"eu", 1}, {"us", 1}, {"us", -3}, {"us", 4}, {"eu", 1}}
	enc := func(name string, rows []row) *Relation {
		vals := make([][]KeyValue, len(rows))
		pays := make([]uint64, len(rows))
		for i, r := range rows {
			vals[i] = []KeyValue{StringKey(r.region), Int64Key(r.id)}
			pays[i] = uint64(i)
		}
		rel, err := sc.Encode(name, vals, pays)
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	want := uint64(0)
	for _, a := range rRows {
		for _, b := range sRows {
			if a == b {
				want++
			}
		}
	}
	e := New(WithWorkers(4))
	res, err := e.Join(context.Background(), enc("R", rRows), enc("S", sRows))
	if err != nil {
		t.Fatal(err)
	}
	if res.Matches != want {
		t.Errorf("Matches = %d, want %d", res.Matches, want)
	}
}

func TestSchemaExactFastPathMatchesRaw(t *testing.T) {
	// A single non-nullable int64 column is exact: the engine must select
	// the fast path (no tie-break) and agree with a raw-uint64 join of the
	// identically ordered keys.
	sc := MustSchema(SchemaColumn{Type: ColumnInt64})
	n := 4096
	rows := make([][]KeyValue, n)
	pays := make([]uint64, n)
	var raw []Tuple
	for i := 0; i < n; i++ {
		k := int64(i%257) - 128 // negatives included
		rows[i] = []KeyValue{Int64Key(k)}
		pays[i] = uint64(i)
		raw = append(raw, Tuple{Key: uint64(k) ^ 1<<63, Payload: uint64(i)})
	}
	enc, err := sc.Encode("E", rows, pays)
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(4))
	encRes, err := e.Join(context.Background(), enc, enc.Clone())
	if err != nil {
		t.Fatal(err)
	}
	rawRes, err := e.Join(context.Background(), NewRelation("R", raw), NewRelation("S", append([]Tuple(nil), raw...)))
	if err != nil {
		t.Fatal(err)
	}
	if encRes.Matches != rawRes.Matches || encRes.MaxSum != rawRes.MaxSum {
		t.Errorf("exact-schema join (%d, %d) disagrees with raw join (%d, %d)",
			encRes.Matches, encRes.MaxSum, rawRes.Matches, rawRes.MaxSum)
	}
}

func TestSchemaMismatchRejected(t *testing.T) {
	bytesSchema := MustSchema(SchemaColumn{Type: ColumnBytes})
	intSchema := MustSchema(SchemaColumn{Type: ColumnInt64}, SchemaColumn{Type: ColumnInt64})
	r := encodeStrings(t, bytesSchema, "R", []string{"a"}, []uint64{1})
	s, err := intSchema.Encode("S", [][]KeyValue{{Int64Key(1), Int64Key(2)}}, []uint64{1})
	if err != nil {
		t.Fatal(err)
	}
	e := New(WithWorkers(2))
	if _, err := e.Join(context.Background(), r, s); err == nil || !strings.Contains(err.Error(), "schema mismatch") {
		t.Errorf("mismatched schemas must be rejected, got %v", err)
	}
	raw := NewRelation("W", []Tuple{{Key: 1, Payload: 1}})
	if _, err := e.Join(context.Background(), r, raw); err == nil || !strings.Contains(err.Error(), "raw-keyed") {
		t.Errorf("tie-break vs raw join must be rejected, got %v", err)
	}
}

func TestSchemaNonInnerTieBreakRejected(t *testing.T) {
	sc := MustSchema(SchemaColumn{Type: ColumnBytes})
	r := encodeStrings(t, sc, "R", []string{"a"}, []uint64{1})
	s := encodeStrings(t, sc, "S", []string{"a"}, []uint64{2})
	e := New(WithWorkers(2))
	if _, err := e.Join(context.Background(), r, s, WithKind(LeftOuterJoin)); err == nil {
		t.Error("left-outer join on tie-break keys must be rejected")
	}
	if _, err := e.Join(context.Background(), r, s, WithBandWidth(10)); err == nil {
		t.Error("band join on tie-break keys must be rejected")
	}
}

func TestSchemaPlanRestrictions(t *testing.T) {
	sc := MustSchema(SchemaColumn{Type: ColumnBytes})
	r := encodeStrings(t, sc, "R", []string{"a", "b"}, []uint64{1, 2})
	s := encodeStrings(t, sc, "S", []string{"b", "c"}, []uint64{3, 4})
	e := New(WithWorkers(2))

	// GroupAggregate over tie-break join output groups by prefix: rejected.
	p := NewPlan()
	rID := p.Scan(r)
	sID := p.Scan(s)
	jID := p.Join(rID, sID)
	p.GroupAggregate(jID, AggSum)
	if _, err := e.RunPlan(context.Background(), p); err == nil {
		t.Error("GroupAggregate over tie-break join must be rejected")
	}

	// Plain sink plans over tie-break scans execute fine.
	p2 := NewPlan()
	j2 := p2.Join(p2.Scan(r), p2.Scan(s))
	p2.Sink(j2, nil)
	pr, err := e.RunPlan(context.Background(), p2)
	if err != nil {
		t.Fatal(err)
	}
	if pr.Matches != 1 {
		t.Errorf("Matches = %d, want 1", pr.Matches)
	}
}

func TestSchemaExplainShowsKeys(t *testing.T) {
	sc := MustSchema(SchemaColumn{Type: ColumnBytes})
	r := encodeStrings(t, sc, "R", []string{"aa", "ab", "long-shared-prefix-1", "long-shared-prefix-2"}, []uint64{1, 2, 3, 4})
	s := encodeStrings(t, sc, "S", []string{"ab", "long-shared-prefix-2"}, []uint64{5, 6})
	e := New(WithWorkers(2), WithAutoPlan(true))
	p := NewPlan()
	j := p.Join(p.Scan(r), p.Scan(s))
	p.Sink(j, nil)
	ex, err := e.Explain(p)
	if err != nil {
		t.Fatal(err)
	}
	rendered := ex.String()
	if !strings.Contains(rendered, "tie-break") {
		t.Errorf("Explain must surface the tie-break key decision:\n%s", rendered)
	}
	if !strings.Contains(rendered, "8-byte prefix") {
		t.Errorf("Explain must surface the prefix width:\n%s", rendered)
	}
	var joinKeys string
	for _, n := range ex.Nodes {
		if n.Kind == "Join" {
			joinKeys = n.Keys
		}
	}
	if !strings.Contains(joinKeys, "est collision") {
		t.Errorf("join node Keys must carry the collision estimate, got %q", joinKeys)
	}

	// Exact schemas must surface the fast-path choice instead.
	intSchema := MustSchema(SchemaColumn{Type: ColumnInt64})
	ri, _ := intSchema.Encode("RI", [][]KeyValue{{Int64Key(1)}}, []uint64{1})
	si, _ := intSchema.Encode("SI", [][]KeyValue{{Int64Key(1)}}, []uint64{2})
	p3 := NewPlan()
	j3 := p3.Join(p3.Scan(ri), p3.Scan(si))
	p3.Sink(j3, nil)
	ex3, err := e.Explain(p3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex3.String(), "fast path") {
		t.Errorf("Explain must surface the exact fast path:\n%s", ex3.String())
	}
}

// TestSchemaJoinStream exercises the streaming API over tie-break keys.
func TestSchemaJoinStream(t *testing.T) {
	sc := MustSchema(SchemaColumn{Type: ColumnBytes})
	r := encodeStrings(t, sc, "R", []string{"stream-key-alpha", "stream-key-beta"}, []uint64{1, 2})
	s := encodeStrings(t, sc, "S", []string{"stream-key-beta", "stream-key-gamma"}, []uint64{3, 4})
	e := New(WithWorkers(2))
	seq, done := e.JoinStream(context.Background(), r, s)
	var got []string
	for rt, st := range seq {
		got = append(got, fmt.Sprintf("%d-%d", rt.Payload, st.Payload))
	}
	if err := done(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(got)
	if len(got) != 1 || got[0] != "2-3" {
		t.Errorf("streamed pairs = %v, want [2-3]", got)
	}
}
