package mpsm

import (
	"repro/internal/keys"
)

// Schema describes a composite join key — typed columns with sort
// direction and null ordering — and encodes rows of such keys into
// relations the engine joins at radix speed.
//
// Every composite key is normalized into an order-preserving byte string
// whose first eight bytes become the tuple's uint64 key, so the packed
// radix sort, the branch-free selection vectors and the cache-blocked
// merge kernels run unmodified on real-world keys. A single non-nullable
// numeric column fits the prefix entirely and joins on the raw fast path
// with zero overhead; strings, composites and nullable columns carry their
// full normalized keys alongside the relation and the join verifies
// prefix-equal candidate pairs against them (the tie-break path), chosen
// automatically at plan time. Explain shows which path a join takes.
//
// Schemas are immutable and safe for concurrent use. Both join sides must
// be encoded under schemas with equal Signatures.
type Schema = keys.Schema

// SchemaColumn is one column of a key schema.
type SchemaColumn = keys.Column

// ColumnType is the value type of a schema column.
type ColumnType = keys.Type

// Schema column types.
const (
	// ColumnInt64 is a signed 64-bit integer column.
	ColumnInt64 = keys.Int64
	// ColumnUint64 is an unsigned 64-bit integer column.
	ColumnUint64 = keys.Uint64
	// ColumnFloat64 is an IEEE-754 double column; NaNs compare equal to
	// each other and greater than every number, -0.0 equals +0.0.
	ColumnFloat64 = keys.Float64
	// ColumnBytes is a variable-length byte-string column.
	ColumnBytes = keys.Bytes
)

// KeyValue is one key column value; build them with Int64Key, Uint64Key,
// Float64Key, BytesKey, StringKey and NullKey.
type KeyValue = keys.Value

// NewSchema validates the columns and returns their schema.
func NewSchema(cols ...SchemaColumn) (*Schema, error) { return keys.New(cols...) }

// MustSchema is NewSchema for statically known schemas; it panics on error.
func MustSchema(cols ...SchemaColumn) *Schema { return keys.MustNew(cols...) }

// Int64Key returns a signed integer key value.
func Int64Key(v int64) KeyValue { return keys.Int64Value(v) }

// Uint64Key returns an unsigned integer key value.
func Uint64Key(v uint64) KeyValue { return keys.Uint64Value(v) }

// Float64Key returns a float key value.
func Float64Key(v float64) KeyValue { return keys.Float64Value(v) }

// BytesKey returns a byte-string key value; the bytes are not copied.
func BytesKey(v []byte) KeyValue { return keys.BytesValue(v) }

// StringKey returns a byte-string key value backed by the string.
func StringKey(v string) KeyValue { return keys.StringValue(v) }

// NullKey returns the null value, valid for any nullable column.
func NullKey() KeyValue { return keys.NullValue() }
