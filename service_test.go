package mpsm

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/mergejoin"
)

// waitForState polls until cond holds or the test deadline is near.
func waitForState(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingSink passes the first joined pair and then blocks until released,
// keeping its query (and its admission reservation) in flight.
type blockingSink struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newBlockingSink() *blockingSink {
	return &blockingSink{started: make(chan struct{}), release: make(chan struct{})}
}

func (b *blockingSink) Open(workers int)                {}
func (b *blockingSink) Writer(w int) mergejoin.Consumer { return b }
func (b *blockingSink) Close() error                    { return nil }

func (b *blockingSink) Consume(r, s Tuple) {
	b.once.Do(func() {
		close(b.started)
		<-b.release
	})
}

var _ Sink = (*blockingSink)(nil)

func TestServiceJoinMatchesEngine(t *testing.T) {
	r := GenerateUniform("R", 2000, 1)
	s := GenerateForeignKey("S", r, 8000, 2)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	svc := NewService(New(WithWorkers(2)))
	defer svc.Close()
	res, err := svc.Join(context.Background(), r, s, WithQueryLabel("solo"))
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if res.Matches != want.Count || res.MaxSum != want.Max {
		t.Fatalf("got %d/%d, want %d/%d", res.Matches, res.MaxSum, want.Count, want.Max)
	}
	st := svc.Stats()
	if st.Admission.Admitted != 1 || st.Active != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Memory.ReservedBytes != 0 {
		t.Fatalf("reserved after completion = %d, want 0", st.Memory.ReservedBytes)
	}
}

// TestServicePlanCacheHitRateAndParity runs the same join repeatedly for every
// algorithm and checks that (a) each repetition matches the reference oracle
// and (b) at least 90% of the plans come from the cache.
func TestServicePlanCacheHitRateAndParity(t *testing.T) {
	r := GenerateUniform("R", 2000, 1)
	s := GenerateForeignKey("S", r, 8000, 2)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	svc := NewService(New())
	defer svc.Close()
	algorithms := []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash}
	const runs = 20
	for _, alg := range algorithms {
		for i := 0; i < runs; i++ {
			res, err := svc.Join(context.Background(), r, s,
				WithQueryOptions(WithAlgorithm(alg), WithWorkers(2)))
			if err != nil {
				t.Fatalf("%v run %d: %v", alg, i, err)
			}
			if res.Matches != want.Count || res.MaxSum != want.Max {
				t.Fatalf("%v run %d: got %d/%d, want %d/%d (cached plan diverged)",
					alg, i, res.Matches, res.MaxSum, want.Count, want.Max)
			}
		}
	}
	pc := svc.Stats().PlanCache
	total := pc.Hits + pc.Misses
	if total != uint64(len(algorithms)*runs) {
		t.Fatalf("cache saw %d lookups, want %d", total, len(algorithms)*runs)
	}
	if rate := float64(pc.Hits) / float64(total); rate < 0.90 {
		t.Fatalf("plan cache hit rate = %.2f (%d/%d), want >= 0.90", rate, pc.Hits, total)
	}
	if pc.Entries != len(algorithms) {
		t.Fatalf("cache entries = %d, want one per algorithm (%d)", pc.Entries, len(algorithms))
	}
}

// TestServiceConcurrentClients is the scaled-down acceptance workload: several
// closed-loop clients share one service; every query must succeed with the
// oracle result and the serving state must drain completely.
func TestServiceConcurrentClients(t *testing.T) {
	r := GenerateUniform("R", 2000, 1)
	s := GenerateForeignKey("S", r, 6000, 2)
	var want mergejoin.MaxAggregate
	mergejoin.ReferenceJoin(r.Tuples, s.Tuples, &want)

	svc := NewService(New(WithScratchPool(true), WithAutoPlan(true), WithWorkers(2)),
		WithFairSlots(2))
	defer svc.Close()
	// Warm the plan cache so the concurrent wave doesn't race on the first
	// miss (the cache has no singleflight; concurrent first sightings each
	// plan once).
	if _, err := svc.Join(context.Background(), r, s); err != nil {
		t.Fatalf("warmup: %v", err)
	}

	const clients, perClient = 8, 4
	errs := make(chan error, clients*perClient)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			weight := 1 + c%2
			for i := 0; i < perClient; i++ {
				res, err := svc.Join(context.Background(), r, s,
					WithQueryWeight(weight))
				if err != nil {
					errs <- err
					return
				}
				if res.Matches != want.Count || res.MaxSum != want.Max {
					errs <- errors.New("concurrent query returned wrong result")
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := svc.Stats()
	if got := st.Admission.Admitted; got != clients*perClient+1 {
		t.Fatalf("admitted = %d, want %d", got, clients*perClient+1)
	}
	if st.Active != 0 || st.Memory.ReservedBytes != 0 {
		t.Fatalf("serving state did not drain: %+v", st)
	}
	pc := st.PlanCache
	if rate := float64(pc.Hits) / float64(pc.Hits+pc.Misses); rate < 0.90 {
		t.Fatalf("hit rate under concurrency = %.2f, want >= 0.90", rate)
	}
}

func TestServiceAdmissionRejects(t *testing.T) {
	r := GenerateUniform("R", 500, 1)
	s := GenerateForeignKey("S", r, 1000, 2)

	svc := NewService(New(WithWorkers(1)),
		WithMaxMemory(1<<20), WithAdmissionQueue(1, 0))
	defer svc.Close()

	// A budget that could never fit is rejected outright, not queued.
	if _, err := svc.Join(context.Background(), r, s, WithQueryBudget(2<<20)); !errors.Is(err, ErrBudgetTooLarge) {
		t.Fatalf("oversized budget error = %v, want ErrBudgetTooLarge", err)
	}

	// Fill the budget with a blocked query, then the queue with a waiter; the
	// next arrival bounces with ErrQueueFull instead of piling up.
	blk := newBlockingSink()
	holderErr := make(chan error, 1)
	go func() {
		_, err := svc.Join(context.Background(), r, s,
			WithQueryBudget(1<<20), WithQueryOptions(WithSink(blk)))
		holderErr <- err
	}()
	<-blk.started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := svc.Join(context.Background(), r, s, WithQueryBudget(1024))
		waiterErr <- err
	}()
	waitForState(t, func() bool { return svc.Stats().Admission.Waiting == 1 })

	if _, err := svc.Join(context.Background(), r, s, WithQueryBudget(1024)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full-queue error = %v, want ErrQueueFull", err)
	}

	close(blk.release)
	if err := <-holderErr; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if err := <-waiterErr; err != nil {
		t.Fatalf("waiter: %v", err)
	}
	if got := svc.Stats().Memory.ReservedBytes; got != 0 {
		t.Fatalf("reserved after drain = %d, want 0", got)
	}
}

// TestServiceCancelWhileQueued is the service-level regression test for
// context cancellation in the admission queue: the canceled query returns
// ctx.Err(), leaves the queue, and its budget is fully recovered.
func TestServiceCancelWhileQueued(t *testing.T) {
	r := GenerateUniform("R", 500, 1)
	s := GenerateForeignKey("S", r, 1000, 2)

	svc := NewService(New(WithWorkers(1)), WithMaxMemory(1<<20))
	defer svc.Close()

	blk := newBlockingSink()
	holderErr := make(chan error, 1)
	go func() {
		_, err := svc.Join(context.Background(), r, s,
			WithQueryBudget(1<<20), WithQueryLabel("holder"), WithQueryOptions(WithSink(blk)))
		holderErr <- err
	}()
	<-blk.started

	// While the holder runs, its reservation is attributed in the pool stats.
	attributed := false
	for _, q := range svc.Stats().Memory.Queries {
		if q.Label == "holder" && q.ReservedBytes == 1<<20 {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("holder's reservation missing from attribution: %+v", svc.Stats().Memory.Queries)
	}

	ctx, cancel := context.WithCancel(context.Background())
	canceledErr := make(chan error, 1)
	go func() {
		_, err := svc.Join(ctx, r, s, WithQueryBudget(1024))
		canceledErr <- err
	}()
	waitForState(t, func() bool { return svc.Stats().Admission.Waiting == 1 })
	cancel()
	if err := <-canceledErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query error = %v, want context.Canceled", err)
	}
	st := svc.Stats().Admission
	if st.Canceled != 1 || st.Waiting != 0 {
		t.Fatalf("admission stats after cancel = %+v", st)
	}

	close(blk.release)
	if err := <-holderErr; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if got := svc.Stats().Memory.ReservedBytes; got != 0 {
		t.Fatalf("reserved after drain = %d, want 0 (canceled waiter leaked)", got)
	}
}

func TestServiceClosed(t *testing.T) {
	r := GenerateUniform("R", 100, 1)
	s := GenerateForeignKey("S", r, 200, 2)
	svc := NewService(New())
	svc.Close()
	if _, err := svc.Join(context.Background(), r, s); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("Join after Close = %v, want ErrServiceClosed", err)
	}
}

// TestServiceRunPlan routes a multi-operator plan through the serving layer
// and compares it against the direct engine execution.
func TestServiceRunPlan(t *testing.T) {
	r := GenerateUniform("R", 1000, 1)
	s := GenerateForeignKey("S", r, 3000, 2)

	build := func() *Plan {
		p := NewPlan()
		rs := p.Scan(r)
		ss := p.Scan(s)
		j := p.Join(rs, ss)
		p.GroupAggregate(j, AggSum)
		return p
	}
	e := New(WithWorkers(2))
	want, err := e.RunPlan(context.Background(), build())
	if err != nil {
		t.Fatalf("engine RunPlan: %v", err)
	}

	svc := NewService(e)
	defer svc.Close()
	got, err := svc.RunPlan(context.Background(), build())
	if err != nil {
		t.Fatalf("service RunPlan: %v", err)
	}
	if got.Output.Len() != want.Output.Len() {
		t.Fatalf("group count = %d, want %d", got.Output.Len(), want.Output.Len())
	}
	for i, g := range got.Output.Tuples {
		if g != want.Output.Tuples[i] {
			t.Fatalf("group %d = %+v, want %+v", i, g, want.Output.Tuples[i])
		}
	}
	// The same shape re-submitted hits the cache.
	if _, err := svc.RunPlan(context.Background(), build()); err != nil {
		t.Fatal(err)
	}
	if pc := svc.Stats().PlanCache; pc.Hits != 1 {
		t.Fatalf("plan cache stats = %+v, want a hit on the repeated plan", pc)
	}
}
