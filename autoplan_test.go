package mpsm

import (
	"context"
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/relation"
)

// sortedRelation returns a key-sorted copy of the relation.
func sortedRelation(rel *Relation) *Relation {
	c := rel.Clone()
	sort.Slice(c.Tuples, func(i, j int) bool { return c.Tuples[i].Key < c.Tuples[j].Key })
	return c
}

// autoplanDatasets enumerates input shapes that exercise every planner
// decision: hash picks, presorted MPSM picks, skewed scheduling, dense
// domains.
func autoplanDatasets(t *testing.T) map[string][2]*Relation {
	t.Helper()
	r := GenerateUniform("R", 1<<14, 101)
	s := GenerateForeignKey("S", r, 1<<16, 102)
	skewR := GenerateSkewedWithDomain("skewR", 1<<14, 1<<16, SkewHigh80, 103)
	skewS := GenerateSkewedWithDomain("skewS", 1<<16, 1<<16, SkewLow80, 104)
	return map[string][2]*Relation{
		"uniform-fk":      {r, s},
		"presorted-both":  {sortedRelation(r), sortedRelation(s)},
		"presorted-S":     {r, sortedRelation(s)},
		"negcorr":         {skewR, skewS},
		"tiny":            {GenerateUniform("tinyR", 512, 105), GenerateUniform("tinyS", 2048, 106)},
		"empty-public":    {r, NewRelation("empty", nil)},
		"big-build-small": {s, r}, // build larger than probe: swap territory
	}
}

// TestAutoPlanJoinParity: for every dataset, an auto-planned join must
// produce exactly the manual join's Matches and MaxSum.
func TestAutoPlanJoinParity(t *testing.T) {
	ctx := context.Background()
	manual := New(WithWorkers(2))
	auto := New(WithWorkers(2), WithAutoPlan(true))
	for name, rs := range autoplanDatasets(t) {
		want, err := manual.Join(ctx, rs[0], rs[1])
		if err != nil {
			t.Fatalf("%s: manual join: %v", name, err)
		}
		got, err := auto.Join(ctx, rs[0], rs[1])
		if err != nil {
			t.Fatalf("%s: auto join: %v", name, err)
		}
		if got.Matches != want.Matches || got.MaxSum != want.MaxSum {
			t.Errorf("%s: auto join diverged: matches %d vs %d, maxsum %d vs %d",
				name, got.Matches, want.Matches, got.MaxSum, want.MaxSum)
		}
	}
}

// TestAutoPlanRespectsSemantics: join kinds, band joins, user sinks and
// streams must survive auto-planning unchanged.
func TestAutoPlanRespectsSemantics(t *testing.T) {
	ctx := context.Background()
	r := GenerateUniform("R", 1<<13, 111)
	s := GenerateForeignKey("S", r, 1<<14, 112)
	manual := New(WithWorkers(2))
	auto := New(WithWorkers(2), WithAutoPlan(true))

	for _, kind := range []JoinKind{LeftOuterJoin, SemiJoin, AntiJoin} {
		want, err := manual.Join(ctx, r, s, WithKind(kind))
		if err != nil {
			t.Fatalf("%v manual: %v", kind, err)
		}
		got, err := auto.Join(ctx, r, s, WithKind(kind))
		if err != nil {
			t.Fatalf("%v auto: %v", kind, err)
		}
		if got.Matches != want.Matches || got.MaxSum != want.MaxSum {
			t.Errorf("%v: auto join diverged: matches %d vs %d", kind, got.Matches, want.Matches)
		}
	}

	wantBand, err := manual.Join(ctx, r, s, WithBandWidth(1000))
	if err != nil {
		t.Fatal(err)
	}
	gotBand, err := auto.Join(ctx, r, s, WithBandWidth(1000))
	if err != nil {
		t.Fatal(err)
	}
	if gotBand.Matches != wantBand.Matches {
		t.Errorf("band join: auto %d matches vs manual %d", gotBand.Matches, wantBand.Matches)
	}

	// Band pairs carry R.Key != S.Key, so the materialized output keys expose
	// an illegal build/probe swap that the pair-symmetric Matches count would
	// hide: compare the full grouped band output.
	bandPlan := func() *Plan {
		p := NewPlan()
		p.GroupAggregate(p.Join(p.Scan(s), p.Scan(r), WithBandWidth(1000)), AggSum)
		return p
	}
	wantGroups, err := manual.RunPlan(ctx, bandPlan())
	if err != nil {
		t.Fatal(err)
	}
	gotGroups, err := auto.RunPlan(ctx, bandPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !relation.SameMultiset(wantGroups.Output.Tuples, gotGroups.Output.Tuples) {
		t.Errorf("grouped band join diverged under auto-planning: %d vs %d groups",
			gotGroups.Output.Len(), wantGroups.Output.Len())
	}

	// A user sink observes (r, s) pair order; auto-planning must not swap
	// roles out from under it. Compare materialized pairs against the
	// default P-MPSM execution pairwise.
	wantSink := NewMaterializeSink()
	if _, err := manual.Join(ctx, s, r, WithSink(wantSink)); err != nil {
		t.Fatal(err)
	}
	gotSink := NewMaterializeSink()
	if _, err := auto.Join(ctx, s, r, WithSink(gotSink)); err != nil {
		t.Fatal(err)
	}
	wantPairs := wantSink.Pairs()
	gotPairs := gotSink.Pairs()
	toTuples := func(pairs []Pair) []Tuple {
		out := make([]Tuple, 0, 2*len(pairs))
		for _, p := range pairs {
			// Fold each ordered pair into two tuples keyed by side so that a
			// swapped (s, r) emission cannot masquerade as (r, s).
			out = append(out, Tuple{Key: p.R.Key, Payload: p.R.Payload},
				Tuple{Key: ^p.S.Key, Payload: p.S.Payload})
		}
		return out
	}
	if !relation.SameMultiset(toTuples(wantPairs), toTuples(gotPairs)) {
		t.Errorf("user-sink pairs diverged under auto-planning (%d vs %d pairs)", len(wantPairs), len(gotPairs))
	}

	// A non-inner or band join configured onto a hash algorithm is rerouted
	// to an MPSM variant under auto-planning — through RunPlan exactly like
	// through Join.
	hashAuto := New(WithWorkers(2), WithAlgorithm(Wisconsin), WithAutoPlan(true))
	semiPlan := NewPlan()
	semiPlan.Sink(semiPlan.Join(semiPlan.Scan(r), semiPlan.Scan(s), WithKind(SemiJoin)), nil)
	planRes, err := hashAuto.RunPlan(ctx, semiPlan)
	if err != nil {
		t.Fatalf("auto RunPlan with semi join on a hash-configured engine: %v", err)
	}
	joinRes, err := hashAuto.Join(ctx, r, s, WithKind(SemiJoin))
	if err != nil {
		t.Fatalf("auto Join with semi join on a hash-configured engine: %v", err)
	}
	if planRes.Matches != joinRes.Matches {
		t.Errorf("semi join via RunPlan (%d) and Join (%d) disagree", planRes.Matches, joinRes.Matches)
	}

	// JoinWithDiskStats pins D-MPSM even under auto-planning.
	res, disk, err := auto.JoinWithDiskStats(ctx, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if disk == nil || res.Algorithm != "D-MPSM" {
		t.Errorf("auto JoinWithDiskStats ran %s without disk stats", res.Algorithm)
	}
}

// TestExplainShowsDecisionsAndEstimates: the Explain tree must surface the
// chosen algorithm with estimates, and ExplainAnalyze must fill in actuals
// that match the estimates within the stats package's documented bounds.
func TestExplainShowsDecisionsAndEstimates(t *testing.T) {
	ctx := context.Background()
	r := GenerateUniform("R", 1<<15, 121)
	s := GenerateForeignKey("S", r, 1<<17, 122)
	engine := New(WithWorkers(2), WithAutoPlan(true))

	plan := NewPlan()
	j := plan.Join(plan.Scan(r), plan.Scan(s))
	plan.GroupAggregate(j, AggSum)

	ex, err := engine.Explain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.AutoPlan {
		t.Errorf("Explain does not report auto-planning")
	}
	tree := ex.String()
	for _, want := range []string{"Scan R", "Scan S", "Join", "GroupAggregate", "est="} {
		if !strings.Contains(tree, want) {
			t.Errorf("Explain tree missing %q:\n%s", want, tree)
		}
	}
	var join *ExplainNode
	for i := range ex.Nodes {
		if ex.Nodes[i].Kind == "Join" {
			join = &ex.Nodes[i]
		}
	}
	if join == nil || join.Algorithm == "" || len(join.Costs) == 0 || join.Reason == "" {
		t.Fatalf("join node lacks decisions: %+v", join)
	}
	if join.ActualRows != -1 {
		t.Errorf("unexecuted Explain reports actual rows %d", join.ActualRows)
	}

	blob, err := json.Marshal(ex)
	if err != nil {
		t.Fatalf("Explain JSON: %v", err)
	}
	if !strings.Contains(string(blob), `"auto_plan":true`) || !strings.Contains(string(blob), `"est_rows"`) {
		t.Errorf("Explain JSON lacks expected fields: %s", blob)
	}

	exA, res, err := engine.ExplainAnalyze(ctx, plan)
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Output == nil {
		t.Fatalf("ExplainAnalyze returned no result")
	}
	for _, n := range exA.Nodes {
		if n.Kind == "Join" {
			if n.ActualRows < 0 {
				t.Errorf("analyzed join has no actual rows")
				continue
			}
			// Foreign-key workload: the probe estimator's documented bound
			// is a factor of 1.5.
			ratio := n.EstRows / float64(n.ActualRows)
			if ratio < 1/1.5 || ratio > 1.5 {
				t.Errorf("join estimate %f vs actual %d outside the documented 1.5x bound", n.EstRows, n.ActualRows)
			}
		}
	}
}

// TestExplainWithoutAutoPlanDescribesConfiguredPlan: without auto-planning,
// Explain reports the configured algorithm annotated with estimates.
func TestExplainWithoutAutoPlanDescribesConfiguredPlan(t *testing.T) {
	r := GenerateUniform("R", 1<<13, 131)
	s := GenerateForeignKey("S", r, 1<<14, 132)
	engine := New(WithWorkers(2), WithAlgorithm(BMPSM))
	plan := NewPlan()
	plan.Sink(plan.Join(plan.Scan(r), plan.Scan(s)), nil)

	ex, err := engine.Explain(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ex.AutoPlan {
		t.Errorf("Explain claims auto-planning on a manual engine")
	}
	for _, n := range ex.Nodes {
		if n.Kind == "Join" && n.Algorithm != "B-MPSM" {
			t.Errorf("Explain shows %q, want the configured B-MPSM", n.Algorithm)
		}
	}
}

// --- Optimizer-safety property test -----------------------------------------

// randomPlanSpec drives the deterministic random plan generator.
type randomPlanSpec struct {
	rng *rand.Rand
}

// relationPool generates a small pool of base relations with varied shapes.
func (g *randomPlanSpec) relationPool() []*Relation {
	sizes := []int{0, 1, 513, 4096, 20000}
	pool := make([]*Relation, 0, 6)
	base := GenerateUniform("base", 8192, 1000+uint64(g.rng.Intn(100)))
	pool = append(pool, base)
	for i := 0; i < 4; i++ {
		n := sizes[g.rng.Intn(len(sizes))]
		seed := 2000 + uint64(g.rng.Intn(1000))
		var rel *Relation
		switch g.rng.Intn(4) {
		case 0:
			rel = GenerateUniform("u", n, seed)
		case 1:
			rel = GenerateSkewedWithDomain("sk", n, 1<<15, SkewLow80, seed)
		case 2:
			rel = GenerateForeignKey("fk", base, n, seed)
		default:
			rel = sortedRelation(GenerateForeignKey("sorted", base, n, seed))
		}
		pool = append(pool, rel)
	}
	return pool
}

// buildRandomPlan assembles a random valid logical plan over the pool:
// 1-3 joins (chain or using per-node algorithm overrides), optional scan
// predicates, and a random root (materialized join, project, aggregate, or
// sink).
func (g *randomPlanSpec) buildRandomPlan(pool []*Relation, algorithms []Algorithm) *Plan {
	plan := NewPlan()
	scan := func() PlanNode {
		rel := pool[g.rng.Intn(len(pool))]
		if g.rng.Intn(3) == 0 {
			cut := uint64(1) << (10 + g.rng.Intn(30))
			return plan.Scan(rel, func(t Tuple) bool { return t.Key < cut })
		}
		return plan.Scan(rel)
	}
	var joinOpts []Option
	if g.rng.Intn(2) == 0 {
		joinOpts = append(joinOpts, WithAlgorithm(algorithms[g.rng.Intn(len(algorithms))]))
	}
	node := plan.Join(scan(), scan(), joinOpts...)
	joins := g.rng.Intn(3)
	for i := 0; i < joins; i++ {
		var opts []Option
		if g.rng.Intn(2) == 0 {
			opts = append(opts, WithAlgorithm(algorithms[g.rng.Intn(len(algorithms))]))
		}
		node = plan.Join(node, scan(), opts...)
	}
	switch g.rng.Intn(4) {
	case 0:
		plan.GroupAggregate(node, []Agg{AggSum, AggMin, AggMax, AggCount}[g.rng.Intn(4)])
	case 1:
		plan.Project(node, func(r, s Tuple) Tuple { return Tuple{Key: r.Key, Payload: r.Payload ^ s.Payload} })
	case 2:
		plan.Sink(node, nil)
	default:
		// The join itself is the root: materialized default projection.
	}
	return plan
}

// runPlanOutputs executes a plan and reduces the outcome to a comparable
// form: the output multiset, or (Matches, MaxSum) for sink roots.
func runPlanOutputs(t *testing.T, engine *Engine, plan *Plan, opts ...Option) ([]Tuple, uint64, uint64) {
	t.Helper()
	res, err := engine.RunPlan(context.Background(), plan, opts...)
	if err != nil {
		t.Fatalf("RunPlan: %v", err)
	}
	if res.Output != nil {
		return res.Output.Tuples, 0, 0
	}
	return nil, res.Matches, res.MaxSum
}

// TestOptimizerSafetyProperty: any valid logical plan must optimize to a
// plan that still validates and produces multiset-identical results to the
// unoptimized execution, across all five algorithms as the engine default.
func TestOptimizerSafetyProperty(t *testing.T) {
	algorithms := []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash}
	const rounds = 12
	for seed := int64(0); seed < rounds; seed++ {
		g := &randomPlanSpec{rng: rand.New(rand.NewSource(seed))}
		pool := g.relationPool()
		for _, alg := range algorithms {
			g.rng = rand.New(rand.NewSource(seed*31 + int64(alg)))
			manual := New(WithWorkers(2), WithAlgorithm(alg))
			auto := New(WithWorkers(2), WithAlgorithm(alg), WithAutoPlan(true), WithScratchPool(true))

			plan := g.buildRandomPlan(pool, algorithms)
			wantOut, wantMatches, wantMax := runPlanOutputs(t, manual, plan)
			gotOut, gotMatches, gotMax := runPlanOutputs(t, auto, plan)

			if !relation.SameMultiset(wantOut, gotOut) || wantMatches != gotMatches || wantMax != gotMax {
				ex, _ := auto.Explain(plan)
				t.Fatalf("seed %d alg %v: optimized plan diverged (%d vs %d tuples, matches %d vs %d)\nplan:\n%s",
					seed, alg, len(wantOut), len(gotOut), wantMatches, gotMatches, ex)
			}
		}
	}
}

// FuzzOptimizerSafety drives the same property from fuzzed seeds.
func FuzzOptimizerSafety(f *testing.F) {
	for _, seed := range []int64{1, 7, 42} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		g := &randomPlanSpec{rng: rand.New(rand.NewSource(seed))}
		pool := g.relationPool()
		plan := g.buildRandomPlan(pool, []Algorithm{PMPSM, BMPSM, DMPSM, Wisconsin, RadixHash})
		manual := New(WithWorkers(2))
		auto := New(WithWorkers(2), WithAutoPlan(true))
		wantOut, wantMatches, wantMax := runPlanOutputs(t, manual, plan)
		gotOut, gotMatches, gotMax := runPlanOutputs(t, auto, plan)
		if !relation.SameMultiset(wantOut, gotOut) || wantMatches != gotMatches || wantMax != gotMax {
			t.Fatalf("seed %d: optimized plan diverged", seed)
		}
	})
}

// TestAutoPlanStatsCacheReuse: repeated auto joins on the same relations
// must hit the cached profiles (observable through consistent, fast
// planning; here we just assert the cache is populated and stable).
func TestAutoPlanStatsCacheReuse(t *testing.T) {
	ctx := context.Background()
	r := GenerateUniform("R", 1<<13, 141)
	s := GenerateForeignKey("S", r, 1<<14, 142)
	engine := New(WithWorkers(2), WithAutoPlan(true))
	if _, err := engine.Join(ctx, r, s); err != nil {
		t.Fatal(err)
	}
	p1 := engine.profileFor(r)
	if _, err := engine.Join(ctx, r, s); err != nil {
		t.Fatal(err)
	}
	if p2 := engine.profileFor(r); p1 != p2 {
		t.Errorf("profile was recomputed for an unchanged relation")
	}
	r.Append(Tuple{Key: 1, Payload: 1})
	if p3 := engine.profileFor(r); p3 == p1 {
		t.Errorf("profile cache kept a stale entry after the relation grew")
	}
}
